package threat

import (
	"strings"
	"testing"
)

func TestScenariosOrder(t *testing.T) {
	got := Scenarios()
	want := []Scenario{Hurricane, HurricaneIntrusion, HurricaneIsolation, HurricaneIntrusionIsolation}
	if len(got) != len(want) {
		t.Fatalf("Scenarios() = %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Scenarios()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScenarioCapability(t *testing.T) {
	tests := []struct {
		s    Scenario
		want Capability
	}{
		{Hurricane, Capability{}},
		{HurricaneIntrusion, Capability{Intrusions: 1}},
		{HurricaneIsolation, Capability{Isolations: 1}},
		{HurricaneIntrusionIsolation, Capability{Intrusions: 1, Isolations: 1}},
	}
	for _, tt := range tests {
		if got := tt.s.Capability(); got != tt.want {
			t.Errorf("%v.Capability() = %+v, want %+v", tt.s, got, tt.want)
		}
	}
}

func TestScenarioString(t *testing.T) {
	if got := HurricaneIntrusionIsolation.String(); !strings.Contains(got, "Intrusion") || !strings.Contains(got, "Isolation") {
		t.Errorf("String() = %q", got)
	}
	if got := Scenario(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown scenario String() = %q", got)
	}
}

func TestScenarioValid(t *testing.T) {
	for _, s := range Scenarios() {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	if Scenario(0).Valid() || Scenario(5).Valid() {
		t.Error("out-of-range scenarios should be invalid")
	}
}

func TestParseScenario(t *testing.T) {
	tests := []struct {
		in   string
		want Scenario
		ok   bool
	}{
		{"hurricane", Hurricane, true},
		{"intrusion", HurricaneIntrusion, true},
		{"isolation", HurricaneIsolation, true},
		{"both", HurricaneIntrusionIsolation, true},
		{"", 0, false},
		{"tsunami", 0, false},
	}
	for _, tt := range tests {
		got, err := ParseScenario(tt.in)
		if tt.ok && (err != nil || got != tt.want) {
			t.Errorf("ParseScenario(%q) = %v, %v", tt.in, got, err)
		}
		if !tt.ok && err == nil {
			t.Errorf("ParseScenario(%q) should error", tt.in)
		}
	}
}

func TestCapabilityValidate(t *testing.T) {
	if err := (Capability{Intrusions: 2, Isolations: 1}).Validate(); err != nil {
		t.Errorf("valid capability rejected: %v", err)
	}
	if err := (Capability{Intrusions: -1}).Validate(); err == nil {
		t.Error("negative intrusions should error")
	}
	if err := (Capability{Isolations: -1}).Validate(); err == nil {
		t.Error("negative isolations should error")
	}
}

func TestAllScenarioStrings(t *testing.T) {
	want := map[Scenario]string{
		Hurricane:                   "Hurricane",
		HurricaneIntrusion:          "Hurricane + Server Intrusion",
		HurricaneIsolation:          "Hurricane + Site Isolation",
		HurricaneIntrusionIsolation: "Hurricane + Server Intrusion + Site Isolation",
	}
	for sc, w := range want {
		if got := sc.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(sc), got, w)
		}
	}
}
