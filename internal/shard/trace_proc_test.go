package shard

// Multi-process observability tests: end-to-end trace propagation and
// stitching across real re-executed worker processes, and fleet-wide
// metrics federation checked against direct worker scrapes.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"compoundthreat/internal/obs"
	"compoundthreat/internal/promtext"
)

// TestShardedTraceStitch is the acceptance path for cross-process
// tracing: a sweep routed through a real two-worker cluster leaves one
// trace ID spanning both processes, and the router's stitched trace
// shows the worker's serving spans nested (by splice and by duration)
// inside the router's client-call span.
func TestShardedTraceStitch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests in -short mode")
	}
	enableObs(t)
	obs.EnableTracing(obs.NewTracer(64, 0))
	t.Cleanup(func() { obs.EnableTracing(nil) })
	const realizations = 48
	c := startCluster(t, 2, realizations, Options{}, "-trace-buffer", "64")
	t.Cleanup(c.stopAll)

	req := httptest.NewRequest(http.MethodGet, "/v1/sweep?scenario=both", nil)
	w := httptest.NewRecorder()
	c.rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("routed sweep = %d: %s", w.Code, w.Body.String())
	}
	traceID := w.Header().Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("router did not assign a trace ID")
	}

	res := httptest.NewRecorder()
	c.rt.Handler().ServeHTTP(res, httptest.NewRequest(http.MethodGet, "/v1/traces/"+traceID, nil))
	if res.Code != http.StatusOK {
		t.Fatalf("stitched trace fetch = %d: %s", res.Code, res.Body.String())
	}
	var rep obs.TraceReport
	if err := json.Unmarshal(res.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TraceID != traceID {
		t.Fatalf("stitched report carries trace %s, want %s", rep.TraceID, traceID)
	}
	if rep.Spans[0].Name != "sweep" {
		t.Errorf("router root span = %q, want sweep", rep.Spans[0].Name)
	}

	// The client-call span carries the backend note and exactly one
	// spliced worker subtree whose root is the worker's handler trace.
	var call, spliced *obs.SpanReport
	var walk func(spans []obs.SpanReport)
	walk = func(spans []obs.SpanReport) {
		for i := range spans {
			if spans[i].Notes["backend"] != "" {
				call = &spans[i]
			}
			walk(spans[i].Children)
		}
	}
	walk(rep.Spans)
	if call == nil {
		t.Fatalf("no client-call span with a backend note in %s", res.Body.String())
	}
	for i := range call.Children {
		if call.Children[i].Notes["remote_backend"] == call.Notes["backend"] {
			spliced = &call.Children[i]
		}
	}
	if spliced == nil {
		t.Fatalf("no worker spans spliced under client-call span %q (notes %v): %s",
			call.Name, call.Notes, res.Body.String())
	}
	if spliced.Name != "sweep" {
		t.Errorf("worker root span = %q, want sweep", spliced.Name)
	}
	// Duration containment: the worker's serving time fits inside the
	// router's client-call span, and every worker child fits inside the
	// worker root.
	if spliced.DurationNS <= 0 || spliced.DurationNS > call.DurationNS {
		t.Errorf("worker span %dns not nested in client-call span %dns", spliced.DurationNS, call.DurationNS)
	}
	if call.Notes["net_ns"] == "" {
		t.Error("client-call span missing the net_ns hop annotation")
	}
	if len(spliced.Children) == 0 {
		t.Error("worker subtree has no serving-pipeline spans")
	}
	for _, child := range spliced.Children {
		if child.DurationNS > spliced.DurationNS {
			t.Errorf("worker child %q (%dns) exceeds worker root (%dns)", child.Name, child.DurationNS, spliced.DurationNS)
		}
	}
}

// TestShardedFleetMetrics: on a quiesced cluster, the federated
// exposition validates and its aggregated counters equal the sum of
// the workers' own scrapes, with per-backend series matching each
// worker exactly.
func TestShardedFleetMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests in -short mode")
	}
	enableObs(t)
	const realizations = 48
	c := startCluster(t, 2, realizations, Options{})
	t.Cleanup(c.stopAll)

	for _, q := range identityQueries {
		if code, body, _ := roundTrip(c.rt.Handler(), q.method, q.url, q.body); code != http.StatusOK {
			t.Fatalf("%s %s = %d: %s", q.method, q.url, code, body)
		}
	}

	// Quiesced: roundTrip is synchronous, so nothing is in flight now
	// except the health prober, whose families the checks avoid.
	direct := make([]*promtext.Metrics, len(c.workers))
	for i, w := range c.workers {
		resp, err := http.Get("http://" + w.addr + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if direct[i], err = promtext.Parse(string(body)); err != nil {
			t.Fatalf("worker %d exposition: %v", i, err)
		}
	}

	w := httptest.NewRecorder()
	c.rt.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/metrics?fleet=1", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("fleet scrape = %d: %s", w.Code, w.Body.String())
	}
	fleet, err := promtext.Parse(w.Body.String())
	if err != nil {
		t.Fatalf("fleet exposition does not parse: %v\n%s", err, w.Body.String())
	}
	if err := fleet.Validate(); err != nil {
		t.Fatalf("fleet exposition invalid: %v\n%s", err, w.Body.String())
	}

	// Families driven only by the (now finished) query battery — the
	// prober and the fleet scrape itself cannot move these between the
	// direct scrapes and the federated one.
	for _, fam := range []string{
		"serve_requests_sweep_total",
		"serve_requests_figure_total",
		"serve_requests_placement_total",
		"serve_latency_ns_sweep_count",
	} {
		var sum float64
		for i, d := range direct {
			v, ok := d.Get(fam)
			if !ok {
				t.Fatalf("worker %d scrape missing %s", i, fam)
			}
			sum += v
			got, ok := fleet.GetLabeled(fam, map[string]string{"backend": c.rt.backends[i].indexStr})
			if !ok || got != v {
				t.Errorf("%s{backend=%q} = %v (ok=%v), worker scrape says %v", fam, c.rt.backends[i].indexStr, got, ok, v)
			}
		}
		if agg, ok := fleet.Get(fam); !ok || agg != sum {
			t.Errorf("aggregate %s = %v (ok=%v), want sum of worker scrapes %v", fam, agg, ok, sum)
		}
		if sum == 0 {
			t.Errorf("%s never moved — the battery did not exercise it", fam)
		}
	}
}
