package shard

// Metrics federation: GET /v1/metrics?fleet=1 renders one exposition
// covering the whole serving tier. The router scrapes every healthy
// backend's /v1/metrics, parses each scrape with internal/promtext,
// and merges families by name together with its own instruments
// (source "router"):
//
//   - counters and untyped samples sum across sources
//   - gauges sum, except *_high / *_max take the max and *_min the
//     min (a fleet-wide high-water mark or minimum, not a sum)
//   - summaries sum _sum and _count
//   - histograms merge bucket-wise: each source's cumulative counts
//     become per-bucket deltas, deltas sum over the union of bounds,
//     and the union re-cumulates. Every recorder buckets by powers of
//     two, so the bounds align and the merge is exact — the fleet
//     histogram is what one recorder observing all requests would
//     have produced, not an approximation.
//
// Each family is emitted as one unlabeled aggregate series plus one
// series per source labeled backend="router"|"0"|"1"|..., so a single
// scrape graphs both the fleet total and the per-worker breakdown. A
// backend that cannot be scraped (or whose exposition does not parse)
// degrades to a "# fleet:" comment instead of failing the exposition.

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"compoundthreat/internal/obs"
	"compoundthreat/internal/promtext"
)

// fleetSource is one successfully parsed exposition in the merge.
type fleetSource struct {
	id string // "router", or the backend index as a string
	m  *promtext.Metrics
}

// writeFleetMetrics scrapes, merges, and writes the fleet exposition.
func (rt *Router) writeFleetMetrics(ctx context.Context, w http.ResponseWriter) error {
	type scrape struct {
		id   string
		text string
		err  error
	}
	var sb strings.Builder
	if err := obs.Default().WritePrometheus(&sb); err != nil {
		return err
	}
	scrapes := []scrape{{id: "router", text: sb.String()}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			text, err := b.scrapeMetrics(ctx)
			mu.Lock()
			scrapes = append(scrapes, scrape{id: b.indexStr, text: text, err: err})
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	// Stable source order: the router first, then backends by index.
	sort.Slice(scrapes, func(i, j int) bool { return sourceRank(scrapes[i].id) < sourceRank(scrapes[j].id) })

	var comments []string
	var sources []fleetSource
	for _, s := range scrapes {
		if s.err != nil {
			comments = append(comments, fmt.Sprintf("# fleet: backend %s unavailable: %s", s.id, sanitizeComment(s.err.Error())))
			continue
		}
		m, err := promtext.Parse(s.text)
		if err != nil {
			comments = append(comments, fmt.Sprintf("# fleet: backend %s exposition unparseable: %s", s.id, sanitizeComment(err.Error())))
			continue
		}
		sources = append(sources, fleetSource{id: s.id, m: m})
	}

	// Union of declared families; a family declared with different
	// types by different sources cannot be merged meaningfully.
	types := make(map[string]string)
	conflicts := make(map[string]bool)
	for _, src := range sources {
		for fam, typ := range src.m.Types {
			if prev, ok := types[fam]; ok && prev != typ {
				conflicts[fam] = true
				continue
			}
			types[fam] = typ
		}
	}
	fams := make([]string, 0, len(types))
	for fam := range types {
		fams = append(fams, fam)
	}
	sort.Strings(fams)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		fmt.Fprintln(bw, c)
	}
	for _, fam := range fams {
		if conflicts[fam] {
			fmt.Fprintf(bw, "# fleet: family %s has conflicting types across sources; skipped\n", fam)
			continue
		}
		switch typ := types[fam]; typ {
		case "counter", "gauge", "untyped":
			writeFleetScalar(bw, fam, typ, sources)
		case "summary":
			writeFleetSummary(bw, fam, sources)
		case "histogram":
			writeFleetHistogram(bw, fam, sources)
		}
	}
	return bw.Flush()
}

// sourceRank orders fleet sources: router, then backends by index.
func sourceRank(id string) int {
	if id == "router" {
		return -1
	}
	n, err := strconv.Atoi(id)
	if err != nil {
		return math.MaxInt
	}
	return n
}

// sanitizeComment keeps a scrape error single-line for the exposition.
func sanitizeComment(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	return strings.ReplaceAll(s, "\r", " ")
}

// fnum renders a merged value: integral values (every instrument in
// this codebase emits integers) print without an exponent.
func fnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeFleetScalar merges one counter/gauge/untyped family. The
// aggregate is a sum, except gauge high-water marks (*_high, *_max)
// take the max and *_min the min.
func writeFleetScalar(w *bufio.Writer, fam, typ string, sources []fleetSource) {
	type sv struct {
		id string
		v  float64
	}
	var vals []sv
	for _, src := range sources {
		if v, ok := src.m.Get(fam); ok {
			vals = append(vals, sv{src.id, v})
		}
	}
	if len(vals) == 0 {
		return
	}
	agg := vals[0].v
	for _, v := range vals[1:] {
		switch {
		case typ == "gauge" && (strings.HasSuffix(fam, "_high") || strings.HasSuffix(fam, "_max")):
			agg = math.Max(agg, v.v)
		case typ == "gauge" && strings.HasSuffix(fam, "_min"):
			agg = math.Min(agg, v.v)
		default:
			agg += v.v
		}
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
	fmt.Fprintf(w, "%s %s\n", fam, fnum(agg))
	for _, v := range vals {
		fmt.Fprintf(w, "%s{backend=%q} %s\n", fam, v.id, fnum(v.v))
	}
}

// writeFleetSummary merges one summary family by summing _sum and
// _count across sources.
func writeFleetSummary(w *bufio.Writer, fam string, sources []fleetSource) {
	type sv struct {
		id         string
		sum, count float64
	}
	var vals []sv
	var aggSum, aggCount float64
	for _, src := range sources {
		s, okS := src.m.Get(fam + "_sum")
		c, okC := src.m.Get(fam + "_count")
		if !okS || !okC {
			continue
		}
		vals = append(vals, sv{src.id, s, c})
		aggSum += s
		aggCount += c
	}
	if len(vals) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE %s summary\n", fam)
	fmt.Fprintf(w, "%s_sum %s\n%s_count %s\n", fam, fnum(aggSum), fam, fnum(aggCount))
	for _, v := range vals {
		fmt.Fprintf(w, "%s_sum{backend=%q} %s\n", fam, v.id, fnum(v.sum))
		fmt.Fprintf(w, "%s_count{backend=%q} %s\n", fam, v.id, fnum(v.count))
	}
}

// writeFleetHistogram merges one histogram family bucket-wise. Each
// source's cumulative buckets convert to per-bound deltas; deltas sum
// over the union of bounds and re-cumulate into the aggregate series.
// All sources bucket on the shared power-of-two grid, so a bound one
// source omits (sparse exposition) is a genuine zero delta there and
// the merge is exact.
func writeFleetHistogram(w *bufio.Writer, fam string, sources []fleetSource) {
	type sh struct {
		id         string
		buckets    []promtext.Sample // cumulative, sorted by bound
		sum, count float64
	}
	var vals []sh
	deltas := make(map[float64]float64)
	boundLabel := make(map[float64]string)
	var aggSum, aggCount float64
	for _, src := range sources {
		buckets := src.m.Buckets(fam)
		if len(buckets) == 0 {
			continue
		}
		s, _ := src.m.Get(fam + "_sum")
		c, _ := src.m.Get(fam + "_count")
		vals = append(vals, sh{src.id, buckets, s, c})
		aggSum += s
		aggCount += c
		prev := 0.0
		for _, b := range buckets {
			le := b.Labels["le"]
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, _ = strconv.ParseFloat(le, 64)
			}
			deltas[bound] += b.Value - prev
			if _, ok := boundLabel[bound]; !ok {
				boundLabel[bound] = le
			}
			prev = b.Value
		}
	}
	if len(vals) == 0 {
		return
	}
	bounds := make([]float64, 0, len(deltas))
	for b := range deltas {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
	cum := 0.0
	for _, b := range bounds {
		cum += deltas[b]
		fmt.Fprintf(w, "%s_bucket{le=%q} %s\n", fam, boundLabel[b], fnum(cum))
	}
	fmt.Fprintf(w, "%s_sum %s\n%s_count %s\n", fam, fnum(aggSum), fam, fnum(aggCount))
	for _, v := range vals {
		for _, b := range v.buckets {
			fmt.Fprintf(w, "%s_bucket{backend=%q,le=%q} %s\n", fam, v.id, b.Labels["le"], fnum(b.Value))
		}
		fmt.Fprintf(w, "%s_sum{backend=%q} %s\n", fam, v.id, fnum(v.sum))
		fmt.Fprintf(w, "%s_count{backend=%q} %s\n", fam, v.id, fnum(v.count))
	}
}
