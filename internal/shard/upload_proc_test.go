package shard

// Multi-process write-path tests: user scenarios uploaded through the
// router must generate on one worker, become routable once its healthz
// advertises the new fingerprint, answer bit-identically to a
// single-process reference — and, with a store directory, survive
// kill -9 with no torn entries.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// uploadTopologyJSON mirrors the serve package's test topology: a
// 4-vertex synthetic island with two control-center candidates and an
// inland data center.
const uploadTopologyJSON = `{
	"name": "shard-island",
	"terrain": {
		"origin": {"lat": 21, "lon": -158},
		"coastline": [
			{"lat": 20.91, "lon": -158.097},
			{"lat": 20.91, "lon": -157.903},
			{"lat": 21.09, "lon": -157.903},
			{"lat": 21.09, "lon": -158.097}
		],
		"coastal_ramp_slope": 0.004,
		"coastal_plain_width_meters": 3000,
		"inland_slope": 0.02,
		"offshore_slope": 0.02
	},
	"assets": [
		{"id": "south-cc", "type": "control-center", "location": {"lat": 20.913, "lon": -158}, "ground_elevation_meters": 0.6, "control_site_candidate": true},
		{"id": "east-cc", "type": "control-center", "location": {"lat": 21.0, "lon": -157.91}, "ground_elevation_meters": 1.2, "control_site_candidate": true},
		{"id": "inland-dc", "type": "data-center", "location": {"lat": 21.0, "lon": -158}, "ground_elevation_meters": 60, "control_site_candidate": true}
	]
}`

// uploadParamsJSON renders generation parameters for the test island.
func uploadParamsJSON(topologyID string, realizations int, seed int64) string {
	return fmt.Sprintf(`{
		"topology": %q,
		"realizations": %d,
		"seed": %d,
		"base": {
			"reference_point": {"lat": 20.55, "lon": -158.35},
			"heading_deg": 315,
			"forward_speed_ms": 5,
			"duration_hours": 24,
			"central_pressure_hpa": 955,
			"rmax_meters": 40000,
			"holland_b": 1.6
		},
		"spread": {
			"track_offset_sigma_meters": 30000,
			"along_track_sigma_meters": 15000,
			"heading_sigma_deg": 5,
			"pressure_sigma_hpa": 8,
			"rmax_sigma_fraction": 0.2,
			"speed_sigma_fraction": 0.15
		}
	}`, topologyID, realizations, seed)
}

// runUserScenario drives the full write path through h: upload the
// topology, submit the generation, poll the job done, and return
// (topologyID, ensembleName).
func runUserScenario(t *testing.T, h http.Handler, realizations int, seed int64) (string, string) {
	t.Helper()
	code, body, _ := roundTrip(h, http.MethodPost, "/v1/topologies", uploadTopologyJSON)
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("topology upload = %d: %s", code, body)
	}
	var up struct {
		TopologyID string `json:"topology_id"`
	}
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	code, body, _ = roundTrip(h, http.MethodPost, "/v1/ensembles", uploadParamsJSON(up.TopologyID, realizations, seed))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("ensemble submit = %d: %s", code, body)
	}
	var sub struct {
		JobID    string `json:"job_id"`
		Ensemble string `json:"ensemble"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		code, body, _ = roundTrip(h, http.MethodGet, "/v1/ensembles/jobs/"+sub.JobID, "")
		if code != http.StatusOK {
			t.Fatalf("poll job %s = %d: %s", sub.JobID, code, body)
		}
		var poll struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(body, &poll); err != nil {
			t.Fatal(err)
		}
		if poll.Status == "done" {
			return up.TopologyID, sub.Ensemble
		}
		if poll.Status != "running" {
			t.Fatalf("job %s: %s (%s)", sub.JobID, poll.Status, poll.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after 120s", sub.JobID)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// awaitRoutedSweep polls one sweep URL through the router until the
// owning worker's new fingerprint has propagated (health probe) and
// the sweep answers 200, returning the response bytes.
func awaitRoutedSweep(t *testing.T, h http.Handler, url string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body, _ := roundTrip(h, http.MethodGet, url, "")
		if code == http.StatusOK {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("routed sweep %s never settled: %d: %s", url, code, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShardedUserScenario uploads a scenario through a two-worker
// cluster: the upload and its generation shard onto one worker by
// content id, the router learns the new fingerprint from healthz and
// routes reads to the owner, and the routed sweep is byte-identical
// to a single-process server driven by the same documents.
func TestShardedUserScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests in -short mode")
	}
	enableObs(t)
	const realizations = 48
	c := startCluster(t, 2, realizations, Options{})
	t.Cleanup(c.stopAll)

	_, ensName := runUserScenario(t, c.rt.Handler(), 12, 7)

	// Reference: the same documents through a single-process server.
	ref := referenceServer(t, realizations)
	refTopo, refEns := runUserScenario(t, ref.Handler(), 12, 7)
	if refEns != ensName {
		t.Fatalf("ensemble name diverged: router %s, reference %s", ensName, refEns)
	}

	sweep := "/v1/sweep?ensemble=" + ensName + "&primary=south-cc&second=east-cc&data_center=inland-dc"
	got := awaitRoutedSweep(t, c.rt.Handler(), sweep)
	wantCode, want, _ := roundTrip(ref.Handler(), http.MethodGet, sweep, "")
	if wantCode != http.StatusOK {
		t.Fatalf("reference sweep = %d: %s", wantCode, want)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("routed sweep over uploaded ensemble differs:\n got: %s\nwant: %s", got, want)
	}

	// The merged topology listing shows the upload exactly once even
	// though only one worker holds it.
	code, body, _ := roundTrip(c.rt.Handler(), http.MethodGet, "/v1/topologies", "")
	if code != http.StatusOK {
		t.Fatalf("routed topology list = %d: %s", code, body)
	}
	var list struct {
		Topologies []struct {
			TopologyID string `json:"topology_id"`
		} `json:"topologies"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range list.Topologies {
		if e.TopologyID == refTopo {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("merged listing shows the upload %d times (want 1): %s", seen, body)
	}

	// Resubmission through the router coalesces onto the finished job.
	code, body, _ = roundTrip(c.rt.Handler(), http.MethodPost, "/v1/ensembles", uploadParamsJSON(refTopo, 12, 7))
	if code != http.StatusOK {
		t.Fatalf("resubmit = %d: %s", code, body)
	}
	var re struct {
		Status    string `json:"status"`
		Coalesced bool   `json:"coalesced"`
	}
	if err := json.Unmarshal(body, &re); err != nil {
		t.Fatal(err)
	}
	if re.Status != "done" || !re.Coalesced {
		t.Fatalf("resubmit = %s, want done+coalesced", body)
	}
}

// TestUploadDurabilityAcrossKill is the crash-safety acceptance test:
// a worker is SIGKILLed after committing an uploaded scenario, torn
// and corrupt files are planted in its store directory, and a restarted
// worker over the same directory must clean the garbage and re-serve
// the committed scenario byte-identically, without re-upload.
func TestUploadDurabilityAcrossKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests in -short mode")
	}
	enableObs(t)
	dir := t.TempDir()
	const realizations = 48
	w1 := startWorker(t, realizations, "-store", dir)
	stopped := false
	t.Cleanup(func() {
		if !stopped {
			w1.stop()
		}
	})

	get := func(addr, url string) (int, []byte) {
		resp, err := http.Get("http://" + addr + url)
		if err != nil {
			return 0, []byte(err.Error())
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}
	post := func(addr, url, body string) (int, []byte) {
		resp, err := http.Post("http://"+addr+url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, []byte(err.Error())
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	code, body := post(w1.addr, "/v1/topologies", uploadTopologyJSON)
	if code != http.StatusCreated {
		t.Fatalf("upload = %d: %s", code, body)
	}
	var up struct {
		TopologyID string `json:"topology_id"`
	}
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	code, body = post(w1.addr, "/v1/ensembles", uploadParamsJSON(up.TopologyID, 12, 7))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var sub struct {
		JobID    string `json:"job_id"`
		Ensemble string `json:"ensemble"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		code, body = get(w1.addr, "/v1/ensembles/jobs/"+sub.JobID)
		if code != http.StatusOK {
			t.Fatalf("poll = %d: %s", code, body)
		}
		var poll struct {
			Status string `json:"status"`
		}
		json.Unmarshal(body, &poll)
		if poll.Status == "done" {
			break
		}
		if poll.Status != "running" || time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	sweep := "/v1/sweep?ensemble=" + sub.Ensemble + "&primary=south-cc&second=east-cc&data_center=inland-dc"
	code, want := get(w1.addr, sweep)
	if code != http.StatusOK {
		t.Fatalf("sweep before kill = %d: %s", code, want)
	}

	// Crash hard, then simulate a torn in-flight write and a corrupted
	// committed entry appearing in the directory.
	w1.kill()
	stopped = true
	if err := os.WriteFile(filepath.Join(dir, "topology", "torn.json.tmp"), []byte("torn partial wr"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ensemble", "deadbeefdeadbeef.json"), []byte("threatstore1 deadbeefdeadbeef 3\nxyz-corrupted"), 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := startWorker(t, realizations, "-store", dir)
	t.Cleanup(w2.stop)

	// The committed scenario is served warm: listed, and bit-identical.
	code, body = get(w2.addr, "/v1/topologies")
	if code != http.StatusOK || !bytes.Contains(body, []byte(up.TopologyID)) {
		t.Fatalf("restarted list = %d: %s, want %s", code, body, up.TopologyID)
	}
	code, got := get(w2.addr, sweep)
	if code != http.StatusOK {
		t.Fatalf("sweep after restart = %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restarted sweep differs:\n got: %s\nwant: %s", got, want)
	}

	// The planted garbage is gone from disk.
	if _, err := os.Stat(filepath.Join(dir, "topology", "torn.json.tmp")); !os.IsNotExist(err) {
		t.Errorf("torn temp file survived the restart (err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ensemble", "deadbeefdeadbeef.json")); !os.IsNotExist(err) {
		t.Errorf("corrupt entry survived the restart (err %v)", err)
	}

	// Resubmitting the identical request needs no regeneration.
	code, body = post(w2.addr, "/v1/ensembles", uploadParamsJSON(up.TopologyID, 12, 7))
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"status":"done"`)) {
		t.Fatalf("resubmit after restart = %d: %s, want 200 done", code, body)
	}
}
