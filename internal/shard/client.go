package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"compoundthreat/internal/obs"
	"compoundthreat/internal/serve"
)

// maxBackendBody bounds how much of a backend response the router will
// buffer. Views travel worker-to-worker, not through the router, so
// router responses are JSON in the tens of kilobytes; 16 MiB is far
// above any legitimate payload.
const maxBackendBody = 16 << 20

// backend is one worker in the pool: its base URL, the health state
// the prober maintains, the ensemble fingerprints learned from its
// health responses, and its per-backend instruments.
type backend struct {
	index int
	base  string // "http://host:port", no trailing slash
	hc    *http.Client

	// indexStr and spanName are the index pre-rendered for trace
	// annotations and client-call span names, so the tracing-off path
	// never concatenates (and so never allocates).
	indexStr string
	spanName string

	healthy   atomic.Bool
	ensembles atomic.Pointer[map[string]string] // name → fingerprint

	requests *obs.Counter
	errors   *obs.Counter
}

func newBackend(index int, base string, hc *http.Client, rec *obs.Recorder) *backend {
	b := &backend{
		index:    index,
		base:     strings.TrimSuffix(base, "/"),
		hc:       hc,
		indexStr: strconv.Itoa(index),
		spanName: "backend." + strconv.Itoa(index),
		requests: rec.Counter("shard.backend_requests." + strconv.Itoa(index)),
		errors:   rec.Counter("shard.backend_errors." + strconv.Itoa(index)),
	}
	empty := map[string]string{}
	b.ensembles.Store(&empty)
	return b
}

// forwardedHeaders are the backend response headers the router replays
// to its client: the wire-codec version (so a codec mismatch is
// diagnosable through the router) and the job trace ID (so submit/poll
// responses stay navigable to the worker-side job trace).
var forwardedHeaders = []string{serve.CodecVersionHeader, serve.JobTraceHeader}

// forward replays one client request against this backend and buffers
// the response. A non-nil error means the backend did not produce a
// response (transport failure) — the caller should fail over; an HTTP
// error status comes back as a response for the caller to classify.
func (b *backend) forward(ctx context.Context, method, path, rawQuery, contentType string, body []byte) (*response, error) {
	u := b.base + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	// Propagate the router's trace context so the worker adopts the
	// same trace ID, with the current (client-call) span as the remote
	// parent. With tracing off the context carries no trace, the render
	// returns "", and nothing is injected or allocated.
	if tp := obs.TraceFromContext(ctx).TraceParent(obs.SpanFromContext(ctx)); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	b.requests.Inc()
	resp, err := b.hc.Do(req)
	if err != nil {
		b.errors.Inc()
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxBackendBody+1))
	if err != nil {
		b.errors.Inc()
		return nil, err
	}
	if len(buf) > maxBackendBody {
		b.errors.Inc()
		return nil, fmt.Errorf("backend %d response exceeds %d bytes", b.index, maxBackendBody)
	}
	if resp.StatusCode/100 == 5 {
		b.errors.Inc()
	}
	res := &response{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        buf,
		backend:     b.index,
	}
	for _, h := range forwardedHeaders {
		if v := resp.Header.Get(h); v != "" {
			if res.header == nil {
				res.header = make(map[string]string, len(forwardedHeaders))
			}
			res.header[h] = v
		}
	}
	return res, nil
}

// scrapeMetrics fetches this backend's Prometheus exposition for the
// fleet-wide metrics merge.
func (b *backend) scrapeMetrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBackendBody))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("backend %d: %s", b.index, resp.Status)
	}
	return string(body), nil
}

// probe refreshes the backend's health and ensemble fingerprints from
// GET /v1/healthz followed by GET /v1/readyz — a worker that is up but
// draining (readyz 503) is unhealthy for routing purposes.
func (b *backend) probe(ctx context.Context) error {
	var health struct {
		Ensembles []struct {
			Name        string `json:"name"`
			Fingerprint string `json:"fingerprint"`
		} `json:"ensembles"`
	}
	if err := b.getJSON(ctx, "/v1/healthz", &health); err != nil {
		b.healthy.Store(false)
		return err
	}
	if err := b.getJSON(ctx, "/v1/readyz", &struct{}{}); err != nil {
		b.healthy.Store(false)
		return err
	}
	m := make(map[string]string, len(health.Ensembles))
	for _, e := range health.Ensembles {
		m[e.Name] = e.Fingerprint
	}
	b.ensembles.Store(&m)
	b.healthy.Store(true)
	return nil
}

// getJSON fetches one backend endpoint and decodes a 200 JSON body.
func (b *backend) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBackendBody))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("backend %d: %s: %s", b.index, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, out)
}

// fingerprint resolves an ensemble name ("" = the backend's only
// ensemble) against this backend's last-probed health response.
func (b *backend) fingerprint(name string) (string, bool) {
	m := *b.ensembles.Load()
	if name == "" {
		if len(m) != 1 {
			return "", false
		}
		for _, fp := range m {
			return fp, true
		}
	}
	fp, ok := m[name]
	return fp, ok
}
