package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compoundthreat/internal/obs"
)

// TestBatcherCoalesces runs many concurrent identical calls through
// one gate and checks exactly one executes while the rest share its
// result, with the leaders/joined counters matching.
func TestBatcherCoalesces(t *testing.T) {
	rec := obs.New()
	b := newBatcher(rec)
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16

	var wg sync.WaitGroup
	results := make([]*response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := b.do(context.Background(), "k", func() (*response, error) {
				calls.Add(1)
				<-gate // hold the leader until all waiters have queued
				return &response{status: 200, body: []byte("ok")}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	// Wait until every non-leader goroutine has joined the call, then
	// release the leader.
	for b.joined.Value() < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	for i, res := range results {
		if res == nil || res.status != 200 || string(res.body) != "ok" {
			t.Fatalf("caller %d got %+v", i, res)
		}
	}
	if l, j := b.leaders.Value(), b.joined.Value(); l != 1 || j != n-1 {
		t.Fatalf("leaders=%d joined=%d, want 1 and %d", l, j, n-1)
	}
}

// TestBatcherDistinctKeysDoNotCoalesce checks two different keys each
// execute.
func TestBatcherDistinctKeysDoNotCoalesce(t *testing.T) {
	b := newBatcher(obs.New())
	var calls atomic.Int64
	for _, key := range []string{"a", "b"} {
		if _, joined, err := b.do(context.Background(), key, func() (*response, error) {
			calls.Add(1)
			return &response{status: 200}, nil
		}); err != nil || joined {
			t.Fatalf("key %q: joined=%v err=%v", key, joined, err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

// TestBatcherLeaderErrorShared checks waiters receive the leader's
// error, and that the key is released for the next batch.
func TestBatcherLeaderErrorShared(t *testing.T) {
	b := newBatcher(obs.New())
	boom := errors.New("boom")
	if _, _, err := b.do(context.Background(), "k", func() (*response, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("leader err = %v, want boom", err)
	}
	// The failed call must not wedge the key.
	res, joined, err := b.do(context.Background(), "k", func() (*response, error) {
		return &response{status: 200}, nil
	})
	if err != nil || joined || res.status != 200 {
		t.Fatalf("post-failure call: res=%+v joined=%v err=%v", res, joined, err)
	}
}

// TestBatcherWaiterContext checks a waiter with an expired context
// fails its own call without waiting for the leader.
func TestBatcherWaiterContext(t *testing.T) {
	b := newBatcher(obs.New())
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		b.do(context.Background(), "k", func() (*response, error) {
			<-gate
			return &response{status: 200}, nil
		})
	}()
	for b.leaders.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := b.do(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(gate)
	<-leaderDone
}
