package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"compoundthreat/internal/obs"
	"compoundthreat/internal/serve"
)

// Options configures a Router. The zero value of every field except
// Backends is usable; defaults() fills it in.
type Options struct {
	// Backends is the worker pool, one base URL per worker
	// ("http://host:port" or "host:port"). Required, order-significant:
	// the ring hashes backend indexes, so a stable flag order keeps the
	// key→worker assignment stable across router restarts.
	Backends []string
	// Replicas is the number of ring points per backend (0 = 64).
	Replicas int
	// Timeout is the per-request deadline, covering every retry and
	// hedge for the request (0 = 15s).
	Timeout time.Duration
	// Hedge launches a second backend attempt if the first has not
	// answered within this delay (0 = hedging off). Only batchable
	// reads hedge; submissions never race two workers.
	Hedge time.Duration
	// HealthInterval is the backend probe period (0 = 2s).
	HealthInterval time.Duration
	// MaxBodyBytes bounds POST bodies (0 = 1 MiB).
	MaxBodyBytes int64
	// MaxUploadBytes bounds topology/ensemble upload bodies, which are
	// legitimately larger than query bodies (0 = 4 MiB). Workers
	// re-check against their own limit.
	MaxUploadBytes int64
	// MaxJobRoutes bounds the job_id→backend table (0 = 4096).
	MaxJobRoutes int
}

func (o Options) defaults() Options {
	if o.Replicas == 0 {
		o.Replicas = 64
	}
	if o.Timeout == 0 {
		o.Timeout = 15 * time.Second
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxUploadBytes == 0 {
		o.MaxUploadBytes = 4 << 20
	}
	if o.MaxJobRoutes == 0 {
		o.MaxJobRoutes = 4096
	}
	return o
}

// Router consistent-hashes queries onto the backend pool. See the
// package comment for the routing model.
type Router struct {
	opt      Options
	backends []*backend
	ring     *Ring
	batch    *batcher
	jobs     *jobRoutes
	mux      *http.ServeMux
	start    time.Time

	retries   *obs.Counter
	hedges    *obs.Counter
	noBackend *obs.Counter

	// tracer is resolved once at construction (obs.DefaultTracer), like
	// the worker's — nil means router-side tracing is off and the
	// request path pays only nil checks.
	tracer *obs.Tracer

	stop   context.CancelFunc
	probed sync.WaitGroup
}

// routerError is a router-originated API error, rendered with the same
// {"error":{"code","message"}} envelope the workers use.
type routerError struct {
	status  int
	code    string
	message string
}

func (e *routerError) Error() string { return e.message }

// errNoBackend is the typed verdict when every candidate backend
// failed at the transport or 5xx level: the request was never answered
// and may be retried by the client.
func errNoBackend(detail string) error {
	return &routerError{status: http.StatusServiceUnavailable, code: "backend_unavailable", message: detail}
}

// New builds a router over the backend pool and starts its health
// prober. Callers own shutdown via Close.
func New(opt Options) (*Router, error) {
	opt = opt.defaults()
	if len(opt.Backends) == 0 {
		return nil, errors.New("shard: no backends")
	}
	rec := obs.Default()
	hc := &http.Client{} // per-request contexts carry the deadlines
	rt := &Router{
		opt:       opt,
		ring:      NewRing(len(opt.Backends), opt.Replicas),
		batch:     newBatcher(rec),
		jobs:      newJobRoutes(opt.MaxJobRoutes),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		retries:   rec.Counter("shard.retries"),
		hedges:    rec.Counter("shard.hedges"),
		noBackend: rec.Counter("shard.no_backend"),
		tracer:    obs.DefaultTracer(),
	}
	seen := make(map[string]bool, len(opt.Backends))
	for i, base := range opt.Backends {
		base = strings.TrimSpace(base)
		if base == "" {
			return nil, fmt.Errorf("shard: backend %d is empty", i)
		}
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		if seen[base] {
			return nil, fmt.Errorf("shard: duplicate backend %s", base)
		}
		seen[base] = true
		rt.backends = append(rt.backends, newBackend(i, base, hc, rec))
	}
	rt.routes()
	ctx, cancel := context.WithCancel(context.Background())
	rt.stop = cancel
	rt.probed.Add(1)
	go rt.prober(ctx)
	return rt, nil
}

// Close stops the health prober. In-flight requests finish on their
// own deadlines.
func (rt *Router) Close() {
	rt.stop()
	rt.probed.Wait()
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// prober keeps backend health and ensemble fingerprints fresh. The
// first sweep runs immediately so the router can route as soon as the
// pool answers its first probe.
func (rt *Router) prober(ctx context.Context) {
	defer rt.probed.Done()
	t := time.NewTicker(rt.opt.HealthInterval)
	defer t.Stop()
	for {
		rt.probeAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// probeAll probes every backend concurrently, bounded by one health
// interval.
func (rt *Router) probeAll(ctx context.Context) {
	pctx, cancel := context.WithTimeout(ctx, rt.opt.HealthInterval)
	defer cancel()
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			b.probe(pctx) // probe records the outcome on the backend
		}(b)
	}
	wg.Wait()
}

// routes registers the router surface: the worker query endpoints it
// shards, plus its own health/metrics endpoints.
func (rt *Router) routes() {
	rt.handle("GET /v1/healthz", "healthz", rt.handleHealthz)
	rt.handle("GET /v1/readyz", "readyz", rt.handleReadyz)
	rt.handle("GET /v1/metrics", "metrics", rt.handleMetrics)
	rt.handle("GET /v1/traces", "traces", rt.handleTraces)
	rt.handle("GET /v1/traces/{id}", "trace_get", rt.handleTraceGet)
	rt.handle("GET /v1/sweep", "sweep", rt.handleSweepGet)
	rt.handle("POST /v1/sweep", "sweep_post", rt.handleSweepPost)
	rt.handle("GET /v1/figure/{id}", "figure", rt.handleFigure)
	rt.handle("GET /v1/placement", "placement", rt.handlePlacement)
	rt.handle("POST /v1/placement/search", "placement_search", rt.handlePlacementSearch)
	rt.handle("GET /v1/placement/jobs/{id}", "placement_job", rt.handleJobPoll)
	rt.handle("POST /v1/topologies", "topology_upload", rt.handleTopologyUpload)
	rt.handle("GET /v1/topologies", "topology_list", rt.handleTopologyList)
	rt.handle("POST /v1/ensembles", "ensemble_submit", rt.handleEnsembleSubmit)
	rt.handle("GET /v1/ensembles/jobs/{id}", "ensemble_job", rt.handleJobPoll)
}

// handle wraps one endpoint with the router's request machinery:
// request counter, latency histogram, per-request deadline, tracing,
// and error rendering. Instruments resolve once at registration. With
// tracing on, the request runs under a trace whose ID every proxied
// call propagates to the workers (see backend.forward); an inbound
// traceparent is adopted, so a client-side tracer can span the client →
// router → worker path under one ID too.
func (rt *Router) handle(pattern, name string, fn func(http.ResponseWriter, *http.Request) error) {
	rec := obs.Default()
	reqs := rec.Counter("shard.requests." + name)
	lat := rec.Histogram("shard.latency_ns." + name)
	rt.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		ctx, cancel := context.WithTimeout(r.Context(), rt.opt.Timeout)
		var trace *obs.Trace
		if rt.tracer != nil {
			if tp, perr := obs.ParseTraceParent(r.Header.Get("traceparent")); perr == nil {
				trace = rt.tracer.StartRemote(name, tp)
			} else {
				trace = rt.tracer.Start(name)
			}
			ctx = obs.ContextWithSpan(obs.ContextWithTrace(ctx, trace), trace.Root())
			w.Header().Set("X-Trace-Id", trace.ID())
		}
		err := fn(w, r.WithContext(ctx))
		cancel()
		lat.Observe(int64(time.Since(start)))
		if err != nil {
			rt.writeError(w, err)
		}
		trace.Finish()
	})
}

// writeError renders the error envelope. Router-originated errors
// carry their own status; serve-package validation errors map through
// serve.ErrorStatus so the router rejects exactly as a worker would.
func (rt *Router) writeError(w http.ResponseWriter, err error) {
	var re *routerError
	var status int
	var code string
	if errors.As(err, &re) {
		status, code = re.status, re.code
		if code == "backend_unavailable" {
			rt.noBackend.Inc()
		}
	} else {
		status, code = serve.ErrorStatus(err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": err.Error()},
	})
}

// writeResponse replays a buffered backend response to the client,
// tagging which worker answered.
func (rt *Router) writeResponse(w http.ResponseWriter, res *response) error {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	for k, v := range res.header {
		w.Header().Set(k, v)
	}
	w.Header().Set("X-Shard-Backend", strconv.Itoa(res.backend))
	w.WriteHeader(res.status)
	_, err := w.Write(res.body)
	return err
}

// resolve renders a query shape as a ring key and, when the named
// ensemble lives on only part of the healthy pool (an uploaded
// scenario, learned from worker healthz), the owning backends. Names
// resolve to content fingerprints from backend health responses, so
// renaming an ensemble (or omitting the name where one is loaded)
// cannot split one view across workers; an unresolvable name routes by
// name and lets the owning worker return the authoritative 404. A nil
// owners slice means every healthy worker can answer (startup-loaded
// ensembles) and plain ring routing applies.
func (rt *Router) resolve(shape serve.QueryShape) (string, []*backend) {
	var fp string
	var owners []*backend
	healthy := 0
	for _, b := range rt.backends {
		if !b.healthy.Load() {
			continue
		}
		healthy++
		f, ok := b.fingerprint(shape.Ensemble)
		if !ok {
			continue
		}
		if fp == "" {
			fp = f
		}
		if f == fp {
			owners = append(owners, b)
		}
	}
	if fp == "" {
		return "name\x1f" + shape.Ensemble + "\x1f" + shape.Identity, nil
	}
	key := fp + "\x1f" + shape.Identity
	if len(owners) == healthy {
		return key, nil
	}
	return key, owners
}

// candidatesFor orders the fetch sequence for a key: the owning
// backends first (ring order), then the rest as failover of last
// resort. With no owner constraint it is plain candidates ordering.
func (rt *Router) candidatesFor(key string, owners []*backend) []*backend {
	cands := rt.candidates(key)
	if len(owners) == 0 {
		return cands
	}
	own := make(map[*backend]bool, len(owners))
	for _, b := range owners {
		own[b] = true
	}
	first := make([]*backend, 0, len(cands))
	var rest []*backend
	for _, b := range cands {
		if own[b] {
			first = append(first, b)
		} else {
			rest = append(rest, b)
		}
	}
	return append(first, rest...)
}

// candidates orders the key's ring sequence for fetching: healthy
// backends first (in ring order), dead ones after as a last resort for
// the window where every probe is stale.
func (rt *Router) candidates(key string) []*backend {
	seq := rt.ring.Seq(key)
	live := make([]*backend, 0, len(seq))
	var dead []*backend
	for _, i := range seq {
		b := rt.backends[i]
		if b.healthy.Load() {
			live = append(live, b)
		} else {
			dead = append(dead, b)
		}
	}
	return append(live, dead...)
}

// attempt is one backend fetch outcome in flight.
type attempt struct {
	res *response
	err error
}

// fetch runs the request against the candidate sequence until one
// backend produces a deterministic verdict (2xx/4xx). Transport
// failures and 5xx responses fail over to the next candidate; with
// hedging enabled, a slow first candidate races the second and the
// first verdict wins. Exhausting the pool is a backend_unavailable
// verdict.
func (rt *Router) fetch(ctx context.Context, cands []*backend, method, path, rawQuery, contentType string, body []byte, mayHedge bool) (*response, error) {
	if len(cands) == 0 {
		return nil, errNoBackend("no backends configured")
	}
	ch := make(chan attempt, len(cands))
	launched := 0
	launch := func() {
		b := cands[launched]
		launched++
		go func() {
			res, err := rt.forwardSpanned(ctx, b, method, path, rawQuery, contentType, body)
			ch <- attempt{res: res, err: err}
		}()
	}
	launch()
	var hedgeC <-chan time.Time
	if mayHedge && rt.opt.Hedge > 0 && len(cands) > 1 {
		t := time.NewTimer(rt.opt.Hedge)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	done := 0
	for {
		select {
		case a := <-ch:
			done++
			if a.err == nil && serve.IsAPIErrorStatus(a.res.status) {
				return a.res, nil
			}
			if a.err != nil {
				lastErr = a.err
			} else {
				lastErr = fmt.Errorf("backend %d answered %d", a.res.backend, a.res.status)
			}
			if launched < len(cands) {
				rt.retries.Inc()
				launch()
			} else if done == launched {
				return nil, errNoBackend(fmt.Sprintf("all %d backends failed: %v", launched, lastErr))
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(cands) {
				rt.hedges.Inc()
				launch()
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// forwardSpanned wraps one backend call in a client-call span named
// after the backend ("backend.N"). The span carries the backend index
// note the trace stitcher keys on, and its ID travels to the worker as
// the traceparent parent, so the worker's trace splices back under
// exactly this span. All span operations are nil no-ops with tracing
// off, and the pre-rendered names mean the off path allocates nothing.
func (rt *Router) forwardSpanned(ctx context.Context, b *backend, method, path, rawQuery, contentType string, body []byte) (*response, error) {
	sp := obs.SpanFromContext(ctx).StartChild(b.spanName)
	sp.Annotate("backend", b.indexStr)
	res, err := b.forward(obs.ContextWithSpan(ctx, sp), method, path, rawQuery, contentType, body)
	if sp != nil {
		if err != nil {
			sp.Annotate("error", "transport")
		} else {
			sp.Annotate("status", strconv.Itoa(res.status))
		}
	}
	sp.End()
	return res, err
}

// serveSharded is the common read path: derive the shard key, batch
// identical in-flight reads, fetch with failover, replay the winner.
func (rt *Router) serveSharded(w http.ResponseWriter, r *http.Request, shape serve.QueryShape, body []byte) error {
	ctx := r.Context()
	cands := rt.candidatesFor(rt.resolve(shape))
	contentType := r.Header.Get("Content-Type")
	var res *response
	var err error
	if shape.Batchable {
		sp := obs.SpanFromContext(ctx).StartChild("batch")
		bctx := obs.ContextWithSpan(ctx, sp)
		res, _, err = rt.batch.do(bctx, serve.BatchKey(r, body), func() (*response, error) {
			return rt.fetch(bctx, cands, r.Method, r.URL.Path, r.URL.RawQuery, contentType, body, true)
		})
		sp.End()
	} else {
		res, err = rt.fetch(ctx, cands, r.Method, r.URL.Path, r.URL.RawQuery, contentType, body, false)
	}
	if err != nil {
		return err
	}
	return rt.writeResponse(w, res)
}

// readBody buffers a bounded POST body.
func (rt *Router) readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.opt.MaxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > rt.opt.MaxBodyBytes {
		return nil, &routerError{status: http.StatusRequestEntityTooLarge, code: "body_too_large",
			message: fmt.Sprintf("request body exceeds %d bytes", rt.opt.MaxBodyBytes)}
	}
	return body, nil
}

func (rt *Router) handleSweepGet(w http.ResponseWriter, r *http.Request) error {
	sp := obs.SpanFromContext(r.Context()).StartChild("validate")
	shape, err := serve.SweepShape(r.URL.Query(), nil)
	sp.End()
	if err != nil {
		return err
	}
	return rt.serveSharded(w, r, shape, nil)
}

func (rt *Router) handleSweepPost(w http.ResponseWriter, r *http.Request) error {
	body, err := rt.readBody(r)
	if err != nil {
		return err
	}
	sp := obs.SpanFromContext(r.Context()).StartChild("validate")
	shape, err := serve.SweepShape(nil, body)
	sp.End()
	if err != nil {
		return err
	}
	return rt.serveSharded(w, r, shape, body)
}

func (rt *Router) handleFigure(w http.ResponseWriter, r *http.Request) error {
	sp := obs.SpanFromContext(r.Context()).StartChild("validate")
	shape, err := serve.FigureShape(r.PathValue("id"), r.URL.Query())
	sp.End()
	if err != nil {
		return err
	}
	return rt.serveSharded(w, r, shape, nil)
}

func (rt *Router) handlePlacement(w http.ResponseWriter, r *http.Request) error {
	sp := obs.SpanFromContext(r.Context()).StartChild("validate")
	shape, err := serve.PlacementShape(r.URL.Query())
	sp.End()
	if err != nil {
		return err
	}
	return rt.serveSharded(w, r, shape, nil)
}

// handlePlacementSearch forwards a submission to the shard owning its
// candidate universe and learns the resulting job's route.
func (rt *Router) handlePlacementSearch(w http.ResponseWriter, r *http.Request) error {
	body, err := rt.readBody(r)
	if err != nil {
		return err
	}
	sp := obs.SpanFromContext(r.Context()).StartChild("validate")
	shape, err := serve.PlacementSearchShape(body)
	sp.End()
	if err != nil {
		return err
	}
	cands := rt.candidatesFor(rt.resolve(shape))
	return rt.forwardSubmission(w, r, cands, body)
}

// forwardSubmission forwards a job-creating POST and learns the
// resulting job's route from the 202 (created/coalesced) or 200
// (already done) response.
func (rt *Router) forwardSubmission(w http.ResponseWriter, r *http.Request, cands []*backend, body []byte) error {
	res, err := rt.fetch(r.Context(), cands, r.Method, r.URL.Path, r.URL.RawQuery, r.Header.Get("Content-Type"), body, false)
	if err != nil {
		return err
	}
	if res.status == http.StatusAccepted || res.status == http.StatusOK {
		var out struct {
			JobID string `json:"job_id"`
		}
		if json.Unmarshal(res.body, &out) == nil && out.JobID != "" {
			rt.jobs.learn(out.JobID, res.backend)
		}
	}
	return rt.writeResponse(w, res)
}

// handleJobPoll polls a job (placement search or ensemble generation —
// both share id derivation and poll semantics) on its learned backend,
// falling back to a broadcast across the pool for unknown or relocated
// jobs (a poll after a warm handoff finds the job on the successor this
// way).
func (rt *Router) handleJobPoll(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	if idx, ok := rt.jobs.lookup(id); ok {
		b := rt.backends[idx]
		if b.healthy.Load() {
			res, err := rt.forwardSpanned(r.Context(), b, r.Method, r.URL.Path, r.URL.RawQuery, "", nil)
			if err == nil && serve.IsAPIErrorStatus(res.status) && res.status != http.StatusNotFound {
				return rt.writeResponse(w, res)
			}
		}
	}
	var notFound *response
	var lastErr error
	for _, b := range rt.candidates("job\x1f" + id) {
		res, err := rt.forwardSpanned(r.Context(), b, r.Method, r.URL.Path, r.URL.RawQuery, "", nil)
		if err != nil {
			lastErr = err
			continue
		}
		if res.status == http.StatusNotFound {
			notFound = res
			continue
		}
		if serve.IsAPIErrorStatus(res.status) {
			rt.jobs.learn(id, b.index)
			return rt.writeResponse(w, res)
		}
		lastErr = fmt.Errorf("backend %d answered %d", b.index, res.status)
	}
	if notFound != nil {
		return rt.writeResponse(w, notFound)
	}
	if lastErr == nil {
		lastErr = errors.New("no backends configured")
	}
	return errNoBackend(fmt.Sprintf("job %s: %v", id, lastErr))
}

// readUploadBody buffers an upload body under the upload limit,
// rejecting oversize bodies with the write path's typed
// payload_too_large error (matching what a worker would answer).
func (rt *Router) readUploadBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.opt.MaxUploadBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > rt.opt.MaxUploadBytes {
		return nil, &routerError{status: http.StatusRequestEntityTooLarge, code: "payload_too_large",
			message: fmt.Sprintf("upload body exceeds %d bytes", rt.opt.MaxUploadBytes)}
	}
	return body, nil
}

// handleTopologyUpload shards an upload by its content id, so the
// topology and every later generation against it land on one worker.
// A document the router cannot derive a key from is still forwarded —
// the worker owns the authoritative validation error.
func (rt *Router) handleTopologyUpload(w http.ResponseWriter, r *http.Request) error {
	body, err := rt.readUploadBody(r)
	if err != nil {
		return err
	}
	key := "upload\x1f"
	if k, err := serve.TopologyUploadKey(body); err == nil {
		key = k
	}
	res, err := rt.fetch(r.Context(), rt.candidates(key), r.Method, r.URL.Path, r.URL.RawQuery, r.Header.Get("Content-Type"), body, false)
	if err != nil {
		return err
	}
	return rt.writeResponse(w, res)
}

// handleTopologyList aggregates the uploaded-topology listings of every
// healthy worker (uploads are sharded, so no single worker has the full
// set), deduplicated by content id.
func (rt *Router) handleTopologyList(w http.ResponseWriter, r *http.Request) error {
	merged := map[string]map[string]any{}
	answered := false
	var lastErr error
	for _, b := range rt.backends {
		if !b.healthy.Load() {
			continue
		}
		res, err := rt.forwardSpanned(r.Context(), b, http.MethodGet, r.URL.Path, r.URL.RawQuery, "", nil)
		if err != nil {
			lastErr = err
			continue
		}
		if res.status != http.StatusOK {
			lastErr = fmt.Errorf("backend %d answered %d", b.index, res.status)
			continue
		}
		var out struct {
			Topologies []map[string]any `json:"topologies"`
		}
		if err := json.Unmarshal(res.body, &out); err != nil {
			lastErr = err
			continue
		}
		answered = true
		for _, t := range out.Topologies {
			if id, _ := t["topology_id"].(string); id != "" {
				merged[id] = t
			}
		}
	}
	if !answered {
		if lastErr == nil {
			lastErr = errors.New("no healthy backends")
		}
		return errNoBackend(fmt.Sprintf("topology list: %v", lastErr))
	}
	ids := make([]string, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	list := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		list = append(list, merged[id])
	}
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(map[string]any{"topologies": list})
}

// handleEnsembleSubmit shards a generation request to the worker
// holding the referenced topology and learns the job route from the
// response.
func (rt *Router) handleEnsembleSubmit(w http.ResponseWriter, r *http.Request) error {
	body, err := rt.readUploadBody(r)
	if err != nil {
		return err
	}
	key := "upload\x1f"
	if k, err := serve.EnsembleSubmitKey(body); err == nil {
		key = k
	}
	return rt.forwardSubmission(w, r, rt.candidates(key), body)
}

// handleHealthz reports the router's own state: per-backend health,
// learned fingerprints, and the batching split.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	type backendJSON struct {
		Index     int               `json:"index"`
		Base      string            `json:"base"`
		Healthy   bool              `json:"healthy"`
		Ensembles map[string]string `json:"ensembles"`
	}
	bs := make([]backendJSON, 0, len(rt.backends))
	healthy := 0
	for _, b := range rt.backends {
		h := b.healthy.Load()
		if h {
			healthy++
		}
		bs = append(bs, backendJSON{Index: b.index, Base: b.base, Healthy: h, Ensembles: *b.ensembles.Load()})
	}
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(map[string]any{
		"status":           "ok",
		"uptime_seconds":   time.Since(rt.start).Seconds(),
		"backends":         bs,
		"healthy_backends": healthy,
		"routed_jobs":      rt.jobs.len(),
		"batch": map[string]int64{
			"leaders": rt.batch.leaders.Value(),
			"joined":  rt.batch.joined.Value(),
		},
	})
}

// handleReadyz reports routability: at least one healthy backend.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) error {
	for _, b := range rt.backends {
		if b.healthy.Load() {
			w.Header().Set("Content-Type", "application/json")
			return json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
		}
	}
	return errNoBackend("no healthy backends")
}

// handleMetrics serves the router's instruments (batching split,
// retries, hedges, per-backend traffic) in Prometheus text exposition.
// With fleet=1 it scrapes every healthy backend and merges the whole
// tier into one exposition (see federate.go).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	if err := checkQueryParams(r, "fleet"); err != nil {
		return err
	}
	if boolParam(r.URL.Query().Get("fleet")) {
		return rt.writeFleetMetrics(r.Context(), w)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	return obs.Default().WritePrometheus(w)
}
