package shard

import (
	"fmt"
	"testing"
)

// TestRingSeqProperties checks the sequence invariants every caller
// relies on: a permutation of all backends, deterministic for a key.
func TestRingSeqProperties(t *testing.T) {
	r := NewRing(5, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Seq(key)
		if len(seq) != 5 {
			t.Fatalf("Seq(%q) has %d entries, want 5", key, len(seq))
		}
		seen := make(map[int]bool, 5)
		for _, idx := range seq {
			if idx < 0 || idx >= 5 || seen[idx] {
				t.Fatalf("Seq(%q) = %v is not a permutation of 0..4", key, seq)
			}
			seen[idx] = true
		}
		again := r.Seq(key)
		for j := range seq {
			if seq[j] != again[j] {
				t.Fatalf("Seq(%q) not deterministic: %v vs %v", key, seq, again)
			}
		}
	}
}

// TestRingBalance checks that home assignments spread across the pool:
// with 64 replicas per backend no backend should own a wildly
// disproportionate share of keys.
func TestRingBalance(t *testing.T) {
	const backends, keys = 4, 4000
	r := NewRing(backends, 64)
	counts := make([]int, backends)
	for i := 0; i < keys; i++ {
		counts[r.Seq(fmt.Sprintf("view-key-%d", i))[0]]++
	}
	for idx, c := range counts {
		if c == 0 {
			t.Fatalf("backend %d owns no keys: %v", idx, counts)
		}
		// Perfect balance is keys/backends; allow a generous 2.5x skew.
		if c > keys*5/(backends*2) {
			t.Fatalf("backend %d owns %d of %d keys (counts %v)", idx, c, keys, counts)
		}
	}
}

// TestRingFailoverConsistency checks the property the router's
// skip-dead-backends failover depends on: removing one backend from
// consideration only moves that backend's keys; every other key keeps
// its home.
func TestRingFailoverConsistency(t *testing.T) {
	r := NewRing(4, 64)
	const dead = 2
	moved := 0
	for i := 0; i < 1000; i++ {
		seq := r.Seq(fmt.Sprintf("key-%d", i))
		home := seq[0]
		// The failover home skips the dead backend in sequence order.
		var failoverHome int
		for _, idx := range seq {
			if idx != dead {
				failoverHome = idx
				break
			}
		}
		if home != dead {
			if failoverHome != home {
				t.Fatalf("key %d moved from live backend %d to %d", i, home, failoverHome)
			}
		} else {
			moved++
			if failoverHome == dead {
				t.Fatalf("key %d still assigned to dead backend", i)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys homed on the dead backend; test proves nothing")
	}
}

// TestRingDegenerateSizes checks the clamping paths.
func TestRingDegenerateSizes(t *testing.T) {
	r := NewRing(0, 0)
	if got := r.Seq("anything"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("degenerate ring Seq = %v, want [0]", got)
	}
	if r.Backends() != 1 {
		t.Fatalf("Backends() = %d, want 1", r.Backends())
	}
}
