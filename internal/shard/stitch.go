package shard

// Trace stitching. Every call the router proxies carries a traceparent
// header naming the router's client-call span ("backend.N") as the
// remote parent, and the worker retains its half of the request under
// the shared trace ID (see obs.Tracer.StartRemote). Stitching turns
// those two halves back into one tree on demand: for each backend a
// router trace touched, fetch GET /v1/traces/{id} from that worker and
// splice the worker's root span under the client-call span whose ID the
// worker recorded as its remote parent. The hop's network cost becomes
// explicit — the client-call span's duration minus the worker root's
// duration is annotated as net_ns on the client-call span. Worker span
// offsets stay worker-relative (the two processes' clocks are not
// comparable); the splice point, not the timestamps, carries the
// cross-process ordering.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"compoundthreat/internal/obs"
)

// stitchDefaultLimit bounds how many traces a stitched listing renders
// when the caller does not pass limit — each stitched trace costs one
// backend fetch per worker it touched, so the default is small.
const stitchDefaultLimit = 8

// checkQueryParams rejects query parameters outside the allowed set
// with the same bad_request envelope the workers use for typos.
func checkQueryParams(r *http.Request, allowed ...string) error {
	ok := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		ok[a] = true
	}
	for k := range r.URL.Query() {
		if !ok[k] {
			return &routerError{status: http.StatusBadRequest, code: "bad_request",
				message: fmt.Sprintf("unknown parameter %q (allowed: %v)", k, allowed)}
		}
	}
	return nil
}

// boolParam reads a 0/1 (or false/true) query parameter.
func boolParam(v string) bool { return v == "1" || v == "true" }

// handleTraces lists the router's completed traces (recent and slow
// rings), mirroring the worker endpoint. With stitch=1 each listed
// trace additionally has its worker spans spliced in, and the listing
// limit defaults to stitchDefaultLimit to bound backend fetches.
func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) error {
	if err := checkQueryParams(r, "limit", "stitch"); err != nil {
		return err
	}
	q := r.URL.Query()
	stitch := boolParam(q.Get("stitch"))
	limit := 0
	if l := q.Get("limit"); l != "" {
		var err error
		limit, err = strconv.Atoi(l)
		if err != nil || limit <= 0 {
			return &routerError{status: http.StatusBadRequest, code: "bad_request",
				message: fmt.Sprintf("limit %q is not a positive integer", l)}
		}
	} else if stitch {
		limit = stitchDefaultLimit
	}
	w.Header().Set("Content-Type", "application/json")
	if rt.tracer == nil {
		return json.NewEncoder(w).Encode(map[string]any{"enabled": false})
	}
	render := func(traces []*obs.Trace) []obs.TraceReport {
		if limit > 0 && limit < len(traces) {
			traces = traces[:limit]
		}
		out := make([]obs.TraceReport, len(traces))
		for i, t := range traces {
			out[i] = t.Report()
			if stitch {
				rt.stitch(r.Context(), &out[i])
			}
		}
		return out
	}
	st := rt.tracer.Stats()
	return json.NewEncoder(w).Encode(map[string]any{
		"enabled":           true,
		"stitched":          stitch,
		"capacity":          rt.tracer.Capacity(),
		"slow_threshold_ns": rt.tracer.SlowThreshold().Nanoseconds(),
		"stats": map[string]int64{
			"started":       st.Started,
			"finished":      st.Finished,
			"slow":          st.Slow,
			"dropped_spans": st.DroppedSpans,
		},
		"recent": render(rt.tracer.Recent()),
		"slow":   render(rt.tracer.Slow()),
	})
}

// handleTraceGet serves one completed router trace by ID, stitched with
// its worker halves by default (stitch=0 opts out, returning only the
// router-side tree).
func (rt *Router) handleTraceGet(w http.ResponseWriter, r *http.Request) error {
	if err := checkQueryParams(r, "stitch"); err != nil {
		return err
	}
	if rt.tracer == nil {
		return &routerError{status: http.StatusNotFound, code: "not_found", message: "tracing is disabled"}
	}
	id := r.PathValue("id")
	t := rt.tracer.Find(id)
	if t == nil {
		return &routerError{status: http.StatusNotFound, code: "not_found",
			message: fmt.Sprintf("unknown trace %q (completed traces are retained for the last %d requests)", id, rt.tracer.Capacity())}
	}
	rep := t.Report()
	if s := r.URL.Query().Get("stitch"); s == "" || boolParam(s) {
		rt.stitch(r.Context(), &rep)
	}
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(rep)
}

// stitch fetches the worker-side halves of one router trace and splices
// them into the report in place. A backend whose trace cannot be
// fetched (worker restarted, ring evicted, tracing off) is recorded as
// a stitch_backend_N note on the root rather than failing the request —
// a partially stitched trace still answers the operator's question.
func (rt *Router) stitch(ctx context.Context, rep *obs.TraceReport) {
	if len(rep.Spans) == 0 {
		return
	}
	idxs := make(map[int]bool)
	collectBackendIndexes(rep.Spans, idxs)
	type fetched struct {
		idx int
		rep obs.TraceReport
		err error
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	results := make([]fetched, 0, len(idxs))
	for idx := range idxs {
		if idx < 0 || idx >= len(rt.backends) {
			continue
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			var wrep obs.TraceReport
			err := rt.backends[idx].getJSON(ctx, "/v1/traces/"+rep.TraceID, &wrep)
			mu.Lock()
			results = append(results, fetched{idx: idx, rep: wrep, err: err})
			mu.Unlock()
		}(idx)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].idx < results[j].idx })

	// Resolve every splice point before mutating: spliced worker spans
	// carry worker-local span IDs that may collide with router span IDs,
	// so a lookup after a splice could land inside a foreign subtree.
	root := &rep.Spans[0]
	parents := make([]*obs.SpanReport, len(results))
	for i, f := range results {
		if f.err == nil && len(f.rep.Spans) > 0 {
			parents[i] = findSpanByID(rep.Spans, int32(f.rep.RemoteParentSpan))
		}
	}
	for i, f := range results {
		if f.err != nil || len(f.rep.Spans) == 0 {
			annotateReport(root, "stitch_backend_"+strconv.Itoa(f.idx), "unavailable")
			continue
		}
		parent := parents[i]
		if parent == nil {
			annotateReport(root, "stitch_backend_"+strconv.Itoa(f.idx), "orphaned")
			continue
		}
		child := f.rep.Spans[0]
		annotateReport(&child, "remote_backend", strconv.Itoa(f.idx))
		if net := parent.DurationNS - child.DurationNS; net >= 0 {
			annotateReport(parent, "net_ns", strconv.FormatInt(net, 10))
		}
		parent.Children = append(parent.Children, child)
	}
}

// collectBackendIndexes gathers the backend indexes annotated on the
// router's client-call spans (see forwardSpanned).
func collectBackendIndexes(spans []obs.SpanReport, out map[int]bool) {
	for i := range spans {
		if v, ok := spans[i].Notes["backend"]; ok {
			if idx, err := strconv.Atoi(v); err == nil {
				out[idx] = true
			}
		}
		collectBackendIndexes(spans[i].Children, out)
	}
}

// findSpanByID returns a pointer to the span with the given ID in the
// (pre-splice) report tree, or nil.
func findSpanByID(spans []obs.SpanReport, id int32) *obs.SpanReport {
	if id == 0 {
		return nil
	}
	for i := range spans {
		if spans[i].ID == id {
			return &spans[i]
		}
		if s := findSpanByID(spans[i].Children, id); s != nil {
			return s
		}
	}
	return nil
}

// annotateReport sets one note on a rendered span.
func annotateReport(s *obs.SpanReport, key, value string) {
	if s.Notes == nil {
		s.Notes = make(map[string]string, 1)
	}
	s.Notes[key] = value
}
