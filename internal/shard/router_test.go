package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compoundthreat/internal/obs"
)

// fakeWorker is a scriptable stand-in for a threatserver worker: it
// answers health probes with a fixed ensemble fingerprint, counts
// sweep hits, owns an explicit set of job IDs, and can be told to fail
// every query with a 500.
type fakeWorker struct {
	idx    int
	srv    *httptest.Server
	sweeps atomic.Int64
	fail   atomic.Bool

	mu          sync.Mutex
	gate        chan struct{} // non-nil: sweep blocks until closed
	jobs        map[string]bool
	traceparent string                        // last traceparent header seen on a sweep
	traceFn     func(id string) (int, string) // scripts GET /v1/traces/{id}; nil = 404
	metricsText string                        // canned GET /v1/metrics exposition
}

func (f *fakeWorker) lastTraceparent() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.traceparent
}

func (f *fakeWorker) setGate(ch chan struct{}) {
	f.mu.Lock()
	f.gate = ch
	f.mu.Unlock()
}

func (f *fakeWorker) ownJob(id string) {
	f.mu.Lock()
	f.jobs[id] = true
	f.mu.Unlock()
}

func newFakeWorker(t *testing.T, idx int) *fakeWorker {
	t.Helper()
	f := &fakeWorker{idx: idx, jobs: make(map[string]bool)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","ensembles":[{"name":"hurricane","fingerprint":"00000000cafef00d"}]}`)
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		if f.fail.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		f.mu.Lock()
		f.traceparent = r.Header.Get("traceparent")
		gate := f.gate
		f.mu.Unlock()
		if gate != nil {
			<-gate
		}
		f.sweeps.Add(1)
		fmt.Fprintf(w, `{"worker":%d}`, f.idx)
	})
	mux.HandleFunc("GET /v1/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		fn := f.traceFn
		f.mu.Unlock()
		if fn == nil {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"not_found","message":"no trace"}}`)
			return
		}
		code, body := fn(r.PathValue("id"))
		w.WriteHeader(code)
		fmt.Fprint(w, body)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		text := f.metricsText
		f.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, text)
	})
	mux.HandleFunc("POST /v1/placement/search", func(w http.ResponseWriter, r *http.Request) {
		if f.fail.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		id := fmt.Sprintf("job-%d", f.idx)
		f.ownJob(id)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"job_id":%q}`, id)
	})
	mux.HandleFunc("GET /v1/placement/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if f.fail.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		id := r.PathValue("id")
		f.mu.Lock()
		owned := f.jobs[id]
		f.mu.Unlock()
		if !owned {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, `{"error":{"code":"not_found","message":"no job %s"}}`, id)
			return
		}
		fmt.Fprintf(w, `{"job_id":%q,"status":"done","worker":%d}`, id, f.idx)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// newTestRouter builds a router over the given fake workers and waits
// for the first probe sweep to mark them healthy.
func newTestRouter(t *testing.T, opt Options, workers ...*fakeWorker) *Router {
	t.Helper()
	rec := obs.New()
	obs.Enable(rec)
	t.Cleanup(func() { obs.Enable(nil) })
	for _, f := range workers {
		opt.Backends = append(opt.Backends, f.srv.URL)
	}
	if opt.HealthInterval == 0 {
		opt.HealthInterval = 50 * time.Millisecond
	}
	rt, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := 0
		for _, b := range rt.backends {
			if b.healthy.Load() {
				healthy++
			}
		}
		if healthy == len(workers) {
			return rt
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d backends healthy after 5s", healthy, len(workers))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// do runs one request through the router handler.
func do(t *testing.T, rt *Router, method, url string, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, url, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest(method, url, nil)
	}
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	return w
}

// TestRouterStableSharding checks every identical sweep lands on the
// same worker, and that the response is tagged with that worker.
func TestRouterStableSharding(t *testing.T) {
	a, b := newFakeWorker(t, 0), newFakeWorker(t, 1)
	rt := newTestRouter(t, Options{}, a, b)
	first := do(t, rt, http.MethodGet, "/v1/sweep", "")
	if first.Code != http.StatusOK {
		t.Fatalf("sweep: %d: %s", first.Code, first.Body.String())
	}
	home := first.Header().Get("X-Shard-Backend")
	if home == "" {
		t.Fatal("response missing X-Shard-Backend")
	}
	for i := 0; i < 10; i++ {
		w := do(t, rt, http.MethodGet, "/v1/sweep", "")
		if got := w.Header().Get("X-Shard-Backend"); got != home {
			t.Fatalf("request %d landed on backend %s, home is %s", i, got, home)
		}
	}
	total := a.sweeps.Load() + b.sweeps.Load()
	if a.sweeps.Load() != total && b.sweeps.Load() != total {
		t.Fatalf("sweeps split across workers: a=%d b=%d", a.sweeps.Load(), b.sweeps.Load())
	}
}

// TestRouterRejectsLocally checks shape validation fails malformed
// requests at the router with the worker's envelope, without spending
// a backend round trip.
func TestRouterRejectsLocally(t *testing.T) {
	a := newFakeWorker(t, 0)
	rt := newTestRouter(t, Options{}, a)
	w := do(t, rt, http.MethodGet, "/v1/sweep?scenario=bogus", "")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
	}
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != "bad_request" {
		t.Fatalf("error code %q, want bad_request", body.Error.Code)
	}
	if a.sweeps.Load() != 0 {
		t.Fatalf("malformed sweep reached a worker %d times", a.sweeps.Load())
	}
}

// TestRouterFailsOver checks a 500 from the home worker retries onto
// the survivor and the client still gets a correct answer.
func TestRouterFailsOver(t *testing.T) {
	a, b := newFakeWorker(t, 0), newFakeWorker(t, 1)
	rt := newTestRouter(t, Options{}, a, b)
	home := do(t, rt, http.MethodGet, "/v1/sweep", "").Header().Get("X-Shard-Backend")
	workers := []*fakeWorker{a, b}
	homeIdx := 0
	if home == "1" {
		homeIdx = 1
	}
	workers[homeIdx].fail.Store(true)

	w := do(t, rt, http.MethodGet, "/v1/sweep", "")
	if w.Code != http.StatusOK {
		t.Fatalf("failover sweep: %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Shard-Backend"); got == home {
		t.Fatalf("response still from failed backend %s", got)
	}
	if rt.retries.Value() == 0 {
		t.Fatal("retries counter did not move")
	}
}

// TestRouterAllBackendsDown checks the typed backend_unavailable
// verdict when the whole pool fails.
func TestRouterAllBackendsDown(t *testing.T) {
	a, b := newFakeWorker(t, 0), newFakeWorker(t, 1)
	rt := newTestRouter(t, Options{}, a, b)
	a.fail.Store(true)
	b.fail.Store(true)
	w := do(t, rt, http.MethodGet, "/v1/sweep", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body.String())
	}
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != "backend_unavailable" {
		t.Fatalf("error code %q, want backend_unavailable", body.Error.Code)
	}
	if rt.noBackend.Value() == 0 {
		t.Fatal("no_backend counter did not move")
	}
}

// TestRouterJobStickiness checks a submission's job route is learned
// and polls go to the owning worker; unknown jobs broadcast to a 404.
func TestRouterJobStickiness(t *testing.T) {
	a, b := newFakeWorker(t, 0), newFakeWorker(t, 1)
	rt := newTestRouter(t, Options{}, a, b)
	w := do(t, rt, http.MethodPost, "/v1/placement/search", `{"k":2}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", w.Code, w.Body.String())
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	owner := w.Header().Get("X-Shard-Backend")
	for i := 0; i < 3; i++ {
		pw := do(t, rt, http.MethodGet, "/v1/placement/jobs/"+sub.JobID, "")
		if pw.Code != http.StatusOK {
			t.Fatalf("poll %d: %d: %s", i, pw.Code, pw.Body.String())
		}
		if got := pw.Header().Get("X-Shard-Backend"); got != owner {
			t.Fatalf("poll answered by %s, owner is %s", got, owner)
		}
	}
	if nw := do(t, rt, http.MethodGet, "/v1/placement/jobs/nope", ""); nw.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404: %s", nw.Code, nw.Body.String())
	}
}

// TestRouterJobRelocation checks the broadcast fallback: a job that
// moved to a worker the router never learned about (a warm handoff) is
// still found.
func TestRouterJobRelocation(t *testing.T) {
	a, b := newFakeWorker(t, 0), newFakeWorker(t, 1)
	rt := newTestRouter(t, Options{}, a, b)
	b.ownJob("inherited-1")
	w := do(t, rt, http.MethodGet, "/v1/placement/jobs/inherited-1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("relocated poll: %d: %s", w.Code, w.Body.String())
	}
	// The broadcast should have re-learned the route.
	if idx, ok := rt.jobs.lookup("inherited-1"); !ok || rt.backends[idx].base != b.srv.URL {
		t.Fatalf("route not learned from broadcast (ok=%v idx=%d)", ok, idx)
	}
}

// TestRouterBatching holds the home worker's sweep open, fires
// concurrent identical sweeps, and checks exactly one reached the
// worker while the rest joined the leader's call.
func TestRouterBatching(t *testing.T) {
	a := newFakeWorker(t, 0)
	rt := newTestRouter(t, Options{}, a)
	gate := make(chan struct{})
	a.setGate(gate)

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = do(t, rt, http.MethodGet, "/v1/sweep", "").Code
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.batch.joined.Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("joined=%d after 5s, want %d", rt.batch.joined.Value(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if got := a.sweeps.Load(); got != 1 {
		t.Fatalf("worker served %d sweeps, want 1", got)
	}
	if l := rt.batch.leaders.Value(); l != 1 {
		t.Fatalf("batch_leaders = %d, want 1", l)
	}
}

// TestRouterHealthEndpoints checks healthz reports the pool and
// readyz tracks backend health.
func TestRouterHealthEndpoints(t *testing.T) {
	a := newFakeWorker(t, 0)
	rt := newTestRouter(t, Options{HealthInterval: 30 * time.Millisecond}, a)
	w := do(t, rt, http.MethodGet, "/v1/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	var h struct {
		HealthyBackends int `json:"healthy_backends"`
		Backends        []struct {
			Ensembles map[string]string `json:"ensembles"`
		} `json:"backends"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.HealthyBackends != 1 {
		t.Fatalf("healthy_backends = %d, want 1", h.HealthyBackends)
	}
	if h.Backends[0].Ensembles["hurricane"] != "00000000cafef00d" {
		t.Fatalf("fingerprints not learned: %+v", h.Backends[0].Ensembles)
	}
	if w := do(t, rt, http.MethodGet, "/v1/readyz", ""); w.Code != http.StatusOK {
		t.Fatalf("readyz: %d", w.Code)
	}
	// Kill the worker; readyz must flip once the probe notices.
	a.srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if w := do(t, rt, http.MethodGet, "/v1/readyz", ""); w.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz still ok 5s after the pool died")
		}
		time.Sleep(10 * time.Millisecond)
	}
	mw := do(t, rt, http.MethodGet, "/v1/metrics", "")
	if mw.Code != http.StatusOK || !strings.Contains(mw.Body.String(), "shard_batch_leaders") {
		t.Fatalf("metrics missing shard counters: %d: %.200s", mw.Code, mw.Body.String())
	}
}

// TestRouterHedging holds the home worker open past the hedge delay
// and checks the second worker answers.
func TestRouterHedging(t *testing.T) {
	a, b := newFakeWorker(t, 0), newFakeWorker(t, 1)
	rt := newTestRouter(t, Options{Hedge: 20 * time.Millisecond}, a, b)
	home := do(t, rt, http.MethodGet, "/v1/sweep", "").Header().Get("X-Shard-Backend")
	workers := []*fakeWorker{a, b}
	homeIdx := 0
	if home == "1" {
		homeIdx = 1
	}
	gate := make(chan struct{})
	defer close(gate)
	workers[homeIdx].setGate(gate)

	w := do(t, rt, http.MethodGet, "/v1/sweep", "")
	if w.Code != http.StatusOK {
		t.Fatalf("hedged sweep: %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Shard-Backend"); got == home {
		t.Fatalf("hedged response came from the stalled home %s", got)
	}
	if rt.hedges.Value() == 0 {
		t.Fatal("hedges counter did not move")
	}
}
