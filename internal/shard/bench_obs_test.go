package shard

// Benchmark for the fleet metrics federation path: one
// GET /v1/metrics?fleet=1 scrape that fans out to two backends,
// parses both expositions, merges every family (counters, gauges,
// summaries, bucket-wise histograms), and renders the aggregated plus
// per-backend-labeled exposition. Part of the "obs" benchcheck set,
// gated against BENCH_10.json.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"compoundthreat/internal/obs"
)

// benchWorkerMetrics renders a realistic worker scrape: the request
// counters, latency histograms, and cache/compile instruments a warmed
// worker actually exposes, populated with seed-varied traffic.
func benchWorkerMetrics(b *testing.B, seed int64) string {
	b.Helper()
	rec := obs.New()
	for i, name := range []string{"sweep", "figure", "placement", "healthz", "metrics"} {
		c := rec.Counter("serve.requests." + name)
		h := rec.Histogram("serve.latency_ns." + name)
		t := rec.Timer("serve.compile_ns." + name)
		for n := int64(0); n < 200; n++ {
			c.Add(1)
			h.Observe((seed + n*int64(i+1)) % (1 << 20))
			t.Record(time.Duration(seed+n) * time.Microsecond)
		}
	}
	rec.Gauge("serve.inflight").Set(seed % 7)
	var sb strings.Builder
	if err := rec.WritePrometheus(&sb); err != nil {
		b.Fatal(err)
	}
	return sb.String()
}

// benchFleetRouter stands up two canned-exposition backends and a
// router with both healthy.
func benchFleetRouter(b *testing.B) *Router {
	b.Helper()
	obs.Enable(obs.New())
	b.Cleanup(func() { obs.Enable(nil) })
	var opt Options
	for i := 0; i < 2; i++ {
		metrics := benchWorkerMetrics(b, int64(1000*(i+1)))
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"status":"ok","ensembles":[{"name":"hurricane","fingerprint":"00000000cafef00d"}]}`)
		})
		mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"status":"ok"}`)
		})
		mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			fmt.Fprint(w, metrics)
		})
		srv := httptest.NewServer(mux)
		b.Cleanup(srv.Close)
		opt.Backends = append(opt.Backends, srv.URL)
	}
	opt.HealthInterval = 50 * time.Millisecond
	rt, err := New(opt)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := 0
		for _, bk := range rt.backends {
			if bk.healthy.Load() {
				healthy++
			}
		}
		if healthy == len(rt.backends) {
			return rt
		}
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d backends healthy after 5s", healthy, len(rt.backends))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkObsFleetMerge measures one full federated scrape: router
// self-scrape, two concurrent backend scrapes over HTTP, exposition
// parsing, family merge, and the final render.
func BenchmarkObsFleetMerge(b *testing.B) {
	rt := benchFleetRouter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/metrics?fleet=1", nil)
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("fleet scrape = %d: %s", w.Code, w.Body.String())
		}
	}
}
