// Package shard is the routing tier of the sharded serving deployment:
// a thin stateless router that consistent-hashes each query's compiled
// view onto a fixed pool of threatserver workers, so every view is
// compiled (and its LRU slot paid for) on exactly one worker.
//
// The router holds no ensemble data. It derives each request's shard
// identity with the serve package's QueryShape helpers — the same code
// the workers validate requests with, so router and worker can never
// disagree about which queries share a view — and resolves ensemble
// names to content fingerprints from the workers' /v1/healthz
// responses.
//
// Three mechanisms ride on top of the ring:
//
//   - Batching: concurrent identical reads collapse into one backend
//     call; waiters replay the leader's response byte-for-byte. The
//     leaders/joined split is exported as shard.batch_leaders and
//     shard.batch_joined.
//   - Retry and hedging: 2xx/4xx backend responses are deterministic
//     verdicts returned as-is; 5xx and transport errors fail over to
//     the next backend on the key's ring sequence. With a hedge delay
//     configured, a slow primary races a second backend and the first
//     verdict wins.
//   - Job stickiness: async placement jobs are worker-local, so the
//     router learns job_id → backend from 202 submissions and
//     broadcasts polls for unknown or orphaned jobs (e.g. inherited
//     over a warm handoff) across the live pool.
package shard
