package shard

// Multi-process cluster tests: the test binary re-executes itself as
// real threatserver-equivalent worker processes (via internal/cmdtest),
// the router runs in-process on top of them, and a single-process
// reference server built from the same seeded ensemble provides the
// ground truth every routed response must match byte for byte.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"compoundthreat/internal/assets"
	"compoundthreat/internal/cmdtest"
	"compoundthreat/internal/hazard"
	"compoundthreat/internal/obs"
	"compoundthreat/internal/serve"
	"compoundthreat/internal/store"
	"compoundthreat/internal/surge"
	"compoundthreat/internal/terrain"
)

func TestMain(m *testing.M) {
	cmdtest.MaybeRunMain(workerMain)
	code := m.Run()
	if benchShared != nil {
		benchShared.stopAll()
	}
	os.Exit(code)
}

// testEnsemble generates the deterministic Oahu hurricane ensemble the
// cluster shares: same seed in every worker process and the reference
// server, so fingerprints — and therefore responses — are identical.
func testEnsemble(realizations int, seed int64) (serve.Ensemble, *assets.Inventory, error) {
	inv := assets.Oahu()
	gen, err := hazard.NewGenerator(terrain.NewOahu(), surge.DefaultParams(), inv)
	if err != nil {
		return nil, nil, err
	}
	cfg := hazard.OahuScenario()
	cfg.Realizations = realizations
	cfg.Seed = seed
	ens, err := gen.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	return ens, inv, nil
}

// workerMain is the re-executed worker process: a serve.Server over
// the seeded test ensemble, listening on an ephemeral port it reports
// on stderr, draining on SIGTERM like the real threatserver.
func workerMain() {
	if err := runWorker(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
}

func runWorker(args []string) error {
	fs := flag.NewFlagSet("shardworker", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	realizations := fs.Int("realizations", 48, "disaster realizations")
	seed := fs.Int64("seed", 7, "ensemble seed")
	storeDir := fs.String("store", "", "persist uploaded scenarios under this directory")
	traceBuffer := fs.Int("trace-buffer", 0, "completed traces retained per ring (0 = tracing off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec := obs.New()
	obs.Enable(rec)
	defer obs.Enable(nil)
	if *traceBuffer > 0 {
		obs.EnableTracing(obs.NewTracer(*traceBuffer, 0))
		defer obs.EnableTracing(nil)
	}
	ens, inv, err := testEnsemble(*realizations, *seed)
	if err != nil {
		return err
	}
	var st *store.Store
	if *storeDir != "" {
		var cleaned int
		if st, cleaned, err = store.Open(*storeDir, store.Options{}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "store cleaned %d\n", cleaned)
	}
	s, err := serve.New(map[string]serve.Ensemble{"hurricane": ens}, inv, serve.Options{Store: st})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "listening on %s\n", ln.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = serve.Run(ctx, ln, s.Handler(), 10*time.Second, os.Stderr)
	s.Close()
	return err
}

// workerProc is one live worker process.
type workerProc struct {
	cmd     *exec.Cmd
	addr    string
	done    chan struct{}
	waitErr error
}

// startWorker re-executes the test binary as a worker and waits for
// its listen address; extra flags (e.g. -store DIR) pass through.
func startWorker(tb testing.TB, realizations int, extra ...string) *workerProc {
	tb.Helper()
	cmd := cmdtest.Command(tb, append([]string{"-realizations", fmt.Sprint(realizations)}, extra...)...)
	pipe, err := cmd.StderrPipe()
	if err != nil {
		tb.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		tb.Fatal(err)
	}
	addrLine := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				addrLine <- a
			}
		}
	}()
	w := &workerProc{cmd: cmd, done: make(chan struct{})}
	go func() { w.waitErr = cmd.Wait(); close(w.done) }()
	select {
	case w.addr = <-addrLine:
	case <-w.done:
		tb.Fatalf("worker exited before listening: %v", w.waitErr)
	case <-time.After(120 * time.Second):
		cmd.Process.Kill()
		tb.Fatal("worker never reported its listen address")
	}
	return w
}

// stop terminates the worker, gracefully first.
func (w *workerProc) stop() {
	select {
	case <-w.done:
		return
	default:
	}
	w.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-w.done:
	case <-time.After(30 * time.Second):
		w.cmd.Process.Kill()
		<-w.done
	}
}

// kill SIGKILLs the worker — the mid-load failure injection.
func (w *workerProc) kill() {
	w.cmd.Process.Kill()
	<-w.done
}

// cluster is a router over real worker processes.
type cluster struct {
	workers []*workerProc
	rt      *Router
}

// startCluster boots n worker processes and an in-process router over
// them, waiting until the router sees every worker healthy. Extra
// worker flags (e.g. -trace-buffer 64) pass through to every worker.
// The caller owns shutdown via stopAll (tests register it as a cleanup;
// the shared benchmark cluster defers it to TestMain).
func startCluster(tb testing.TB, n, realizations int, opt Options, extra ...string) *cluster {
	tb.Helper()
	c := &cluster{}
	for i := 0; i < n; i++ {
		c.workers = append(c.workers, startWorker(tb, realizations, extra...))
	}
	for _, w := range c.workers {
		opt.Backends = append(opt.Backends, "http://"+w.addr)
	}
	if opt.HealthInterval == 0 {
		opt.HealthInterval = 100 * time.Millisecond
	}
	rt, err := New(opt)
	if err != nil {
		c.stopAll()
		tb.Fatal(err)
	}
	c.rt = rt
	deadline := time.Now().Add(60 * time.Second)
	for {
		healthy := 0
		for _, b := range rt.backends {
			if b.healthy.Load() {
				healthy++
			}
		}
		if healthy == n {
			return c
		}
		if time.Now().After(deadline) {
			c.stopAll()
			tb.Fatalf("only %d/%d workers healthy after 60s", healthy, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (c *cluster) stopAll() {
	if c.rt != nil {
		c.rt.Close()
	}
	for _, w := range c.workers {
		w.stop()
	}
}

// referenceServer builds the single-process ground truth over the
// identical ensemble.
func referenceServer(tb testing.TB, realizations int) *serve.Server {
	tb.Helper()
	ens, inv, err := testEnsemble(realizations, 7)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := serve.New(map[string]serve.Ensemble{"hurricane": ens}, inv, serve.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(s.Close)
	return s
}

// enableObs installs a fresh recorder for the test (router and
// reference server resolve instruments from the global default).
func enableObs(tb testing.TB) *obs.Recorder {
	rec := obs.New()
	obs.Enable(rec)
	tb.Cleanup(func() { obs.Enable(nil) })
	return rec
}

// roundTrip runs one request against a handler and returns status,
// body, and the backend tag.
func roundTrip(h http.Handler, method, url, body string) (int, []byte, string) {
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, url, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest(method, url, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.Bytes(), w.Header().Get("X-Shard-Backend")
}

// identityQueries is the read surface the bit-identity and kill tests
// sweep: distinct universes so the keys spread across the ring.
var identityQueries = []struct {
	method, url, body string
}{
	{http.MethodGet, "/v1/sweep", ""},
	{http.MethodGet, "/v1/sweep?scenario=both", ""},
	{http.MethodGet, "/v1/sweep?scenario=intrusion", ""},
	{http.MethodPost, "/v1/sweep", `{"scenario":"isolation"}`},
	{http.MethodGet, "/v1/figure/9", ""},
	{http.MethodGet, "/v1/figure/6", ""},
	{http.MethodGet, "/v1/placement?primary=honolulu-cc&scenario=intrusion&limit=3", ""},
	{http.MethodGet, "/v1/placement?primary=honolulu-cc&scenario=both", ""},
}

// TestShardedBitIdentity routes the full read surface through a
// two-worker cluster and checks every response is byte-identical to
// the single-process reference server, including an async placement
// search polled to completion on both sides.
func TestShardedBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests in -short mode")
	}
	enableObs(t)
	const realizations = 48
	c := startCluster(t, 2, realizations, Options{})
	t.Cleanup(c.stopAll)
	ref := referenceServer(t, realizations)

	for _, q := range identityQueries {
		wantCode, want, _ := roundTrip(ref.Handler(), q.method, q.url, q.body)
		gotCode, got, backend := roundTrip(c.rt.Handler(), q.method, q.url, q.body)
		if wantCode != http.StatusOK {
			t.Fatalf("reference %s %s = %d: %s", q.method, q.url, wantCode, want)
		}
		if gotCode != wantCode {
			t.Fatalf("%s %s: router %d, reference %d: %s", q.method, q.url, gotCode, wantCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s %s differs (worker %s):\n got: %s\nwant: %s", q.method, q.url, backend, got, want)
		}
	}

	// The async search: identical submission on both sides, identical
	// terminal poll response (modulo the wall-clock age field).
	search := `{"k":2,"scenario":"both"}`
	refCode, refSub, _ := roundTrip(ref.Handler(), http.MethodPost, "/v1/placement/search", search)
	gotCode, gotSub, _ := roundTrip(c.rt.Handler(), http.MethodPost, "/v1/placement/search", search)
	if refCode != http.StatusAccepted || gotCode != http.StatusAccepted {
		t.Fatalf("search submits: router %d (%s), reference %d (%s)", gotCode, gotSub, refCode, refSub)
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(gotSub, &sub); err != nil {
		t.Fatal(err)
	}
	poll := func(h http.Handler) map[string]any {
		deadline := time.Now().Add(60 * time.Second)
		for {
			code, body, _ := roundTrip(h, http.MethodGet, "/v1/placement/jobs/"+sub.JobID, "")
			if code != http.StatusOK {
				t.Fatalf("poll %s: %d: %s", sub.JobID, code, body)
			}
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				t.Fatal(err)
			}
			if m["status"] == "done" {
				delete(m, "age_seconds")
				return m
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %v after 60s", sub.JobID, m["status"])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	want, _ := json.Marshal(poll(ref.Handler()))
	got, _ := json.Marshal(poll(c.rt.Handler()))
	if !bytes.Equal(got, want) {
		t.Fatalf("job %s result differs:\n got: %s\nwant: %s", sub.JobID, got, want)
	}
}

// TestShardedWorkerKill fires sustained load through a two-worker
// cluster, SIGKILLs one worker mid-load, and checks every response is
// either the bit-identical correct answer (retried onto the survivor)
// or the typed backend_unavailable envelope — never a wrong answer —
// and that the cluster settles back to all-correct service.
func TestShardedWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests in -short mode")
	}
	enableObs(t)
	const realizations = 48
	c := startCluster(t, 2, realizations, Options{HealthInterval: 100 * time.Millisecond})
	t.Cleanup(c.stopAll)
	ref := referenceServer(t, realizations)

	// Ground truth for every query in the battery.
	want := make(map[string][]byte, len(identityQueries))
	for _, q := range identityQueries {
		code, body, _ := roundTrip(ref.Handler(), q.method, q.url, q.body)
		if code != http.StatusOK {
			t.Fatalf("reference %s %s = %d", q.method, q.url, code)
		}
		want[q.method+q.url] = body
	}

	// Load loop: every goroutine cycles the battery until told to stop,
	// classifying each response.
	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		mu       sync.Mutex
		ok       int
		shed     int
		wrong    []string
		sawAfter int // correct answers observed after the kill
		killed   bool
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := identityQueries[i%len(identityQueries)]
				code, body, _ := roundTrip(c.rt.Handler(), q.method, q.url, q.body)
				mu.Lock()
				switch {
				case code == http.StatusOK && bytes.Equal(body, want[q.method+q.url]):
					ok++
					if killed {
						sawAfter++
					}
				case code == http.StatusServiceUnavailable && bytes.Contains(body, []byte("backend_unavailable")):
					shed++
				default:
					if len(wrong) < 5 {
						wrong = append(wrong, fmt.Sprintf("%s %s → %d: %.200s", q.method, q.url, code, body))
					}
				}
				mu.Unlock()
			}
		}()
	}

	// Let the load warm both shards, then kill one worker mid-flight.
	time.Sleep(500 * time.Millisecond)
	mu.Lock()
	killed = true
	mu.Unlock()
	c.workers[0].kill()

	// Keep loading until the survivor has proven it serves the full
	// battery correctly post-kill.
	deadline := time.Now().Add(60 * time.Second)
	for {
		mu.Lock()
		settled := sawAfter > 4*len(identityQueries)
		mu.Unlock()
		if settled || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if len(wrong) > 0 {
		t.Fatalf("responses that were neither correct nor typed shed errors:\n%s", strings.Join(wrong, "\n"))
	}
	if ok == 0 {
		t.Fatal("no successful responses at all")
	}
	if sawAfter <= 4*len(identityQueries) {
		t.Fatalf("survivor never settled: %d correct answers after kill (ok=%d shed=%d)", sawAfter, ok, shed)
	}
	if c.rt.retries.Value() == 0 {
		t.Fatal("retries counter did not move across the kill")
	}
	t.Logf("load summary: ok=%d shed=%d retries=%d after-kill=%d", ok, shed, c.rt.retries.Value(), sawAfter)
}

// ---- multi-process load benchmarks (BENCH_7.json) ----

// benchShared is the cluster the benchmarks amortize: two real worker
// processes plus the in-process router, started on first use and torn
// down in TestMain.
var benchShared *cluster

// benchRealizations keeps worker startup short enough for CI smoke
// runs while giving the sweep a non-trivial evaluation cost.
const benchRealizations = 100

func benchCluster(b *testing.B) *cluster {
	b.Helper()
	if benchShared == nil {
		obs.Enable(obs.New())
		benchShared = startCluster(b, 2, benchRealizations, Options{})
		// Warm every shard so the benchmarks measure cached serving, as
		// the single-process serve benchmarks do.
		for _, q := range identityQueries {
			code, body, _ := roundTrip(benchShared.rt.Handler(), q.method, q.url, q.body)
			if code != http.StatusOK {
				b.Fatalf("warmup %s %s: %d: %s", q.method, q.url, code, body)
			}
		}
	}
	return benchShared
}

// BenchmarkShardedSweepRouter measures the full routed path: router
// handler, shard-key derivation, batching gate, HTTP to the owning
// worker process, cached view evaluation, response replay.
func BenchmarkShardedSweepRouter(b *testing.B) {
	c := benchCluster(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, body, _ := roundTrip(c.rt.Handler(), http.MethodGet, "/v1/sweep?scenario=both", "")
		if code != http.StatusOK {
			b.Fatalf("sweep: %d: %s", code, body)
		}
	}
}

// BenchmarkShardedSweepDirect is the same cached sweep sent straight
// to the owning worker process — the router's overhead is the delta
// against BenchmarkShardedSweepRouter.
func BenchmarkShardedSweepDirect(b *testing.B) {
	c := benchCluster(b)
	_, _, backend := roundTrip(c.rt.Handler(), http.MethodGet, "/v1/sweep?scenario=both", "")
	var base string
	for i, w := range c.workers {
		if fmt.Sprint(i) == backend {
			base = "http://" + w.addr
		}
	}
	if base == "" {
		b.Fatalf("could not resolve owning worker from backend tag %q", backend)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(base + "/v1/sweep?scenario=both")
		if err != nil {
			b.Fatal(err)
		}
		// Drain before Close so the keep-alive connection is reused —
		// the router's backend client reads full bodies too.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("sweep: %d", resp.StatusCode)
		}
	}
}

// BenchmarkShardedSweepParallel runs identical concurrent sweeps
// through the router, exercising the batching gate under contention.
func BenchmarkShardedSweepParallel(b *testing.B) {
	c := benchCluster(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			code, body, _ := roundTrip(c.rt.Handler(), http.MethodGet, "/v1/sweep?scenario=both", "")
			if code != http.StatusOK {
				b.Fatalf("sweep: %d: %s", code, body)
			}
		}
	})
}
