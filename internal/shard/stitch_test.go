package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"compoundthreat/internal/obs"
)

// enableRouterTracing installs a tracer before the router is built
// (the router resolves obs.DefaultTracer at New, like the workers).
func enableRouterTracing(t *testing.T) *obs.Tracer {
	t.Helper()
	tr := obs.NewTracer(32, 0)
	obs.EnableTracing(tr)
	t.Cleanup(func() { obs.EnableTracing(nil) })
	return tr
}

// findSpanNamed returns the first span with the given name, depth-first.
func findSpanNamed(spans []obs.SpanReport, name string) *obs.SpanReport {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if s := findSpanNamed(spans[i].Children, name); s != nil {
			return s
		}
	}
	return nil
}

// TestRouterTracePropagation: with tracing on, a routed sweep reaches
// the worker carrying a traceparent whose trace ID is the router's and
// whose parent span is the client-call ("backend.N") span.
func TestRouterTracePropagation(t *testing.T) {
	enableRouterTracing(t)
	f := newFakeWorker(t, 0)
	rt := newTestRouter(t, Options{}, f)

	w := do(t, rt, http.MethodGet, "/v1/sweep", "")
	if w.Code != http.StatusOK {
		t.Fatalf("sweep = %d: %s", w.Code, w.Body.String())
	}
	traceID := w.Header().Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("router did not report X-Trace-Id")
	}
	tp, err := obs.ParseTraceParent(f.lastTraceparent())
	if err != nil {
		t.Fatalf("worker received traceparent %q: %v", f.lastTraceparent(), err)
	}
	if got := fmt.Sprintf("%016x", tp.TraceID); got != traceID {
		t.Errorf("propagated trace ID %s, router trace %s", got, traceID)
	}
	if tp.SpanID == 0 {
		t.Error("propagated parent span ID is zero")
	}
}

// TestRouterTraceStitch: GET /v1/traces/{id} on the router splices the
// worker's trace (fetched from the worker's own /v1/traces/{id}) under
// the client-call span named in the propagated traceparent, with the
// hop's network time annotated.
func TestRouterTraceStitch(t *testing.T) {
	enableRouterTracing(t)
	f := newFakeWorker(t, 0)
	// The scripted worker renders its half from the traceparent it
	// actually received, like a real worker would.
	f.mu.Lock()
	f.traceFn = func(id string) (int, string) {
		tp, err := obs.ParseTraceParent(f.lastTraceparent())
		if err != nil || fmt.Sprintf("%016x", tp.TraceID) != id {
			return http.StatusNotFound, `{"error":{"code":"not_found","message":"unknown trace"}}`
		}
		return http.StatusOK, fmt.Sprintf(
			`{"trace_id":%q,"name":"sweep","started_at":"2026-01-01T00:00:00Z","duration_ns":500,"remote_parent_span_id":%d,`+
				`"spans":[{"span_id":1,"name":"sweep","start_ns":0,"duration_ns":500,`+
				`"children":[{"span_id":2,"name":"evaluate","start_ns":10,"duration_ns":400}]}]}`,
			id, tp.SpanID)
	}
	f.mu.Unlock()
	rt := newTestRouter(t, Options{}, f)

	w := do(t, rt, http.MethodGet, "/v1/sweep", "")
	if w.Code != http.StatusOK {
		t.Fatalf("sweep = %d", w.Code)
	}
	traceID := w.Header().Get("X-Trace-Id")

	res := do(t, rt, http.MethodGet, "/v1/traces/"+traceID, "")
	if res.Code != http.StatusOK {
		t.Fatalf("stitched fetch = %d: %s", res.Code, res.Body.String())
	}
	var rep obs.TraceReport
	if err := json.Unmarshal(res.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TraceID != traceID {
		t.Fatalf("report trace %s, want %s", rep.TraceID, traceID)
	}
	call := findSpanNamed(rep.Spans, "backend.0")
	if call == nil {
		t.Fatalf("no backend.0 client-call span in %s", res.Body.String())
	}
	if call.Notes["backend"] != "0" || call.Notes["status"] != "200" {
		t.Errorf("client-call notes = %v", call.Notes)
	}
	var spliced *obs.SpanReport
	for i := range call.Children {
		if call.Children[i].Notes["remote_backend"] == "0" {
			spliced = &call.Children[i]
		}
	}
	if spliced == nil {
		t.Fatalf("no spliced worker span under backend.0: %s", res.Body.String())
	}
	if spliced.Name != "sweep" || spliced.DurationNS != 500 {
		t.Errorf("spliced root = %s/%dns, want sweep/500ns", spliced.Name, spliced.DurationNS)
	}
	if findSpanNamed(spliced.Children, "evaluate") == nil {
		t.Error("worker subtree lost its child spans")
	}
	net, err := time.ParseDuration(call.Notes["net_ns"] + "ns")
	if err != nil || net.Nanoseconds() != call.DurationNS-500 {
		t.Errorf("net_ns note = %q, want %d", call.Notes["net_ns"], call.DurationNS-500)
	}
}

// TestRouterTraceStitchUnavailable: a worker that cannot serve its half
// degrades to a root annotation, not an error.
func TestRouterTraceStitchUnavailable(t *testing.T) {
	enableRouterTracing(t)
	f := newFakeWorker(t, 0) // traceFn nil → 404 on trace fetches
	rt := newTestRouter(t, Options{}, f)

	w := do(t, rt, http.MethodGet, "/v1/sweep", "")
	traceID := w.Header().Get("X-Trace-Id")
	res := do(t, rt, http.MethodGet, "/v1/traces/"+traceID, "")
	if res.Code != http.StatusOK {
		t.Fatalf("stitched fetch = %d", res.Code)
	}
	var rep obs.TraceReport
	if err := json.Unmarshal(res.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Spans[0].Notes["stitch_backend_0"] != "unavailable" {
		t.Errorf("root notes = %v, want stitch_backend_0=unavailable", rep.Spans[0].Notes)
	}
	if call := findSpanNamed(rep.Spans, "backend.0"); call == nil || len(call.Children) != 0 {
		t.Errorf("client-call span = %+v, want present with no spliced children", call)
	}
}

// TestRouterTraceEndpointsDisabled: with tracing off the listing says
// so and the by-ID lookup 404s — and requests carry no trace headers.
func TestRouterTraceEndpointsDisabled(t *testing.T) {
	f := newFakeWorker(t, 0)
	rt := newTestRouter(t, Options{}, f)

	w := do(t, rt, http.MethodGet, "/v1/sweep", "")
	if h := w.Header().Get("X-Trace-Id"); h != "" {
		t.Errorf("X-Trace-Id = %q with tracing off", h)
	}
	if tp := f.lastTraceparent(); tp != "" {
		t.Errorf("worker received traceparent %q with tracing off", tp)
	}
	res := do(t, rt, http.MethodGet, "/v1/traces", "")
	var list map[string]any
	if err := json.Unmarshal(res.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list["enabled"] != false {
		t.Errorf("listing = %v, want enabled=false", list)
	}
	if res := do(t, rt, http.MethodGet, "/v1/traces/0123456789abcdef", ""); res.Code != http.StatusNotFound {
		t.Errorf("trace fetch with tracing off = %d, want 404", res.Code)
	}
}

// TestRouterTraceListing: the stitched listing honors the default limit
// and renders ring statistics.
func TestRouterTraceListing(t *testing.T) {
	enableRouterTracing(t)
	f := newFakeWorker(t, 0)
	rt := newTestRouter(t, Options{}, f)
	for i := 0; i < 3; i++ {
		if w := do(t, rt, http.MethodGet, "/v1/sweep", ""); w.Code != http.StatusOK {
			t.Fatalf("sweep %d = %d", i, w.Code)
		}
	}
	res := do(t, rt, http.MethodGet, "/v1/traces?stitch=1&limit=2", "")
	if res.Code != http.StatusOK {
		t.Fatalf("listing = %d: %s", res.Code, res.Body.String())
	}
	var list struct {
		Enabled  bool              `json:"enabled"`
		Stitched bool              `json:"stitched"`
		Stats    map[string]int64  `json:"stats"`
		Recent   []obs.TraceReport `json:"recent"`
	}
	if err := json.Unmarshal(res.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if !list.Enabled || !list.Stitched {
		t.Errorf("enabled=%v stitched=%v", list.Enabled, list.Stitched)
	}
	if len(list.Recent) != 2 {
		t.Errorf("recent = %d traces, want limit 2", len(list.Recent))
	}
	if list.Stats["finished"] < 3 {
		t.Errorf("stats = %v, want >= 3 finished", list.Stats)
	}
	if res := do(t, rt, http.MethodGet, "/v1/traces?limit=x", ""); res.Code != http.StatusBadRequest {
		t.Errorf("bad limit = %d, want 400", res.Code)
	}
	if res := do(t, rt, http.MethodGet, "/v1/traces?bogus=1", ""); res.Code != http.StatusBadRequest {
		t.Errorf("unknown param = %d, want 400", res.Code)
	}
}
