package shard

import "sync"

// jobRoutes remembers which backend owns each async placement job, so
// polls go straight to the worker that accepted the submission. It is
// a bounded FIFO cache, not a source of truth: a missing or stale
// entry only costs the poll a broadcast across the live pool (which
// also re-learns the route), so evicting the oldest entry is always
// safe.
type jobRoutes struct {
	mu    sync.Mutex
	m     map[string]int
	order []string
	max   int
}

func newJobRoutes(max int) *jobRoutes {
	if max < 1 {
		max = 4096
	}
	return &jobRoutes{m: make(map[string]int, max), max: max}
}

// learn records (or refreshes) a job's backend.
func (j *jobRoutes) learn(id string, backend int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.m[id]; !ok {
		j.order = append(j.order, id)
		for len(j.order) > j.max {
			delete(j.m, j.order[0])
			j.order = j.order[1:]
		}
	}
	j.m[id] = backend
}

// lookup returns the backend last seen owning the job.
func (j *jobRoutes) lookup(id string) (int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	idx, ok := j.m[id]
	return idx, ok
}

// len reports the number of routed jobs, for the router health view.
func (j *jobRoutes) len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.m)
}
