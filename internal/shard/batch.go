package shard

import (
	"context"
	"sync"

	"compoundthreat/internal/obs"
)

// response is one buffered backend response: everything a waiter needs
// to replay the leader's answer byte-for-byte.
type response struct {
	status      int
	contentType string
	header      map[string]string // extra headers worth forwarding (codec version)
	body        []byte
	backend     int // index of the backend that answered, for the X-Shard-Backend header
}

// batchCall is one in-flight coalesced fetch. The leader closes done
// after storing res/err; waiters only ever read after done.
type batchCall struct {
	done chan struct{}
	res  *response
	err  error
	// traceID is the leader's trace ID, set before the call is published
	// so joined waiters can cross-link their traces to the one that
	// actually carries the backend spans.
	traceID string
}

// batcher collapses concurrent identical reads into one backend call.
// The key must capture the full response identity (method, path,
// canonical query, body — see serve.BatchKey); only requests whose
// responses are pure functions of the request bytes may be batched.
type batcher struct {
	mu      sync.Mutex
	calls   map[string]*batchCall
	leaders *obs.Counter
	joined  *obs.Counter
}

func newBatcher(rec *obs.Recorder) *batcher {
	return &batcher{
		calls:   make(map[string]*batchCall),
		leaders: rec.Counter("shard.batch_leaders"),
		joined:  rec.Counter("shard.batch_joined"),
	}
}

// do runs fn once per batch of concurrent identical calls. The first
// caller for a key becomes the leader and executes fn; callers arriving
// while the leader is in flight wait and share its result. joined
// reports whether this caller shared another's call. A waiter whose
// context expires first returns its own context error — the leader's
// fetch continues for the batch.
func (b *batcher) do(ctx context.Context, key string, fn func() (*response, error)) (res *response, joined bool, err error) {
	b.mu.Lock()
	if c, ok := b.calls[key]; ok {
		b.mu.Unlock()
		b.joined.Inc()
		// A joined waiter's own trace has no backend spans — annotate it
		// with the leader's trace ID so the two traces stay navigable.
		if sp := obs.SpanFromContext(ctx); sp != nil {
			sp.Annotate("joined", "true")
			if c.traceID != "" {
				sp.Annotate("leader_trace_id", c.traceID)
			}
		}
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &batchCall{done: make(chan struct{}), traceID: obs.TraceFromContext(ctx).ID()}
	b.calls[key] = c
	b.mu.Unlock()
	b.leaders.Inc()

	c.res, c.err = fn()
	b.mu.Lock()
	delete(b.calls, key)
	b.mu.Unlock()
	close(c.done)
	return c.res, false, c.err
}
