package shard

import (
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over a fixed set of backend indexes.
// Each backend owns Replicas points on the ring; a key's sequence is
// the distinct backends encountered walking clockwise from the key's
// hash. The ring is immutable after construction — backend failure is
// handled by the caller skipping dead entries in Seq order, which
// preserves the consistent-hashing property: keys on a dead backend
// spill to their next ring successor, everything else stays put.
type Ring struct {
	points []ringPoint
	n      int
}

// ringPoint is one virtual node: a replica hash and the backend index
// that owns it.
type ringPoint struct {
	hash uint64
	idx  int
}

// fnv1a hashes s with 64-bit FNV-1a — the same function the serving
// tier uses for cache keys, cheap and stable across processes.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NewRing builds a ring over backends 0..n-1 with the given number of
// virtual nodes per backend (more replicas, smoother balance; 64 is a
// good default for small pools).
func NewRing(n, replicas int) *Ring {
	if n < 1 {
		n = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	r := &Ring{points: make([]ringPoint, 0, n*replicas), n: n}
	for idx := 0; idx < n; idx++ {
		for v := 0; v < replicas; v++ {
			h := fnv1a("backend-" + strconv.Itoa(idx) + "-" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, idx: idx})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.idx < b.idx // total order keeps construction deterministic
	})
	return r
}

// Backends reports the number of backends on the ring.
func (r *Ring) Backends() int { return r.n }

// Seq returns the key's full preference order: every backend index
// exactly once, starting at the key's ring successor and continuing
// clockwise. Element 0 is the key's home; the rest is its failover
// order, so skipping unhealthy prefixes is itself consistent.
func (r *Ring) Seq(key string) []int {
	h := fnv1a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(seq) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			seq = append(seq, p.idx)
		}
	}
	return seq
}
