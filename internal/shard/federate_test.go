package shard

import (
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"testing"

	"compoundthreat/internal/obs"
	"compoundthreat/internal/promtext"
)

// worker0Metrics / worker1Metrics are canned worker scrapes covering
// every merge rule: counter sum, gauge sum vs high/min/max rules,
// summary sum, and bucket-wise histogram merge over sparse bounds.
const worker0Metrics = `# TYPE serve_requests_sweep_total counter
serve_requests_sweep_total 3
# TYPE serve_inflight gauge
serve_inflight 1
# TYPE serve_inflight_high gauge
serve_inflight_high 4
# TYPE serve_compile_ns summary
serve_compile_ns_sum 100
serve_compile_ns_count 2
# TYPE serve_compile_ns_min gauge
serve_compile_ns_min 10
# TYPE serve_compile_ns_max gauge
serve_compile_ns_max 50
# TYPE serve_latency_ns_sweep histogram
serve_latency_ns_sweep_bucket{le="1024"} 2
serve_latency_ns_sweep_bucket{le="+Inf"} 3
serve_latency_ns_sweep_sum 5000
serve_latency_ns_sweep_count 3
`

const worker1Metrics = `# TYPE serve_requests_sweep_total counter
serve_requests_sweep_total 4
# TYPE serve_inflight gauge
serve_inflight 2
# TYPE serve_inflight_high gauge
serve_inflight_high 3
# TYPE serve_compile_ns summary
serve_compile_ns_sum 200
serve_compile_ns_count 3
# TYPE serve_compile_ns_min gauge
serve_compile_ns_min 5
# TYPE serve_compile_ns_max gauge
serve_compile_ns_max 80
# TYPE serve_latency_ns_sweep histogram
serve_latency_ns_sweep_bucket{le="2048"} 1
serve_latency_ns_sweep_bucket{le="+Inf"} 2
serve_latency_ns_sweep_sum 7000
serve_latency_ns_sweep_count 2
`

// fleetScrape runs GET /v1/metrics?fleet=1 and returns the parsed,
// validated exposition.
func fleetScrape(t *testing.T, rt *Router) *promtext.Metrics {
	t.Helper()
	w := do(t, rt, http.MethodGet, "/v1/metrics?fleet=1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("fleet scrape = %d: %s", w.Code, w.Body.String())
	}
	m, err := promtext.Parse(w.Body.String())
	if err != nil {
		t.Fatalf("fleet exposition does not parse: %v\n%s", err, w.Body.String())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("fleet exposition invalid: %v\n%s", err, w.Body.String())
	}
	return m
}

func TestRouterFleetMetricsMerge(t *testing.T) {
	a := newFakeWorker(t, 0)
	a.metricsText = worker0Metrics
	b := newFakeWorker(t, 1)
	b.metricsText = worker1Metrics
	rt := newTestRouter(t, Options{}, a, b)
	m := fleetScrape(t, rt)

	// Counter: aggregate is the sum; per-backend series carry the parts.
	if v, ok := m.Get("serve_requests_sweep_total"); !ok || v != 7 {
		t.Errorf("aggregate sweep counter = %v (ok=%v), want 7", v, ok)
	}
	if v, _ := m.GetLabeled("serve_requests_sweep_total", map[string]string{"backend": "0"}); v != 3 {
		t.Errorf("backend 0 sweep counter = %v, want 3", v)
	}
	if v, _ := m.GetLabeled("serve_requests_sweep_total", map[string]string{"backend": "1"}); v != 4 {
		t.Errorf("backend 1 sweep counter = %v, want 4", v)
	}

	// Gauges: levels sum, high-water marks take max, minimums min.
	if v, _ := m.Get("serve_inflight"); v != 3 {
		t.Errorf("serve_inflight = %v, want 3", v)
	}
	if v, _ := m.Get("serve_inflight_high"); v != 4 {
		t.Errorf("serve_inflight_high = %v, want max 4", v)
	}
	if v, _ := m.Get("serve_compile_ns_min"); v != 5 {
		t.Errorf("serve_compile_ns_min = %v, want min 5", v)
	}
	if v, _ := m.Get("serve_compile_ns_max"); v != 80 {
		t.Errorf("serve_compile_ns_max = %v, want max 80", v)
	}

	// Summary: _sum and _count both sum.
	if v, _ := m.Get("serve_compile_ns_sum"); v != 300 {
		t.Errorf("serve_compile_ns_sum = %v, want 300", v)
	}
	if v, _ := m.Get("serve_compile_ns_count"); v != 5 {
		t.Errorf("serve_compile_ns_count = %v, want 5", v)
	}

	// Histogram: deltas merge over the union of bounds and re-cumulate.
	buckets := seriesBuckets(m, "serve_latency_ns_sweep", "")
	want := []struct {
		le  string
		cum float64
	}{{"1024", 2}, {"2048", 3}, {"+Inf", 5}}
	if len(buckets) != len(want) {
		t.Fatalf("aggregate buckets = %v, want %v", buckets, want)
	}
	for i, b := range buckets {
		if b.Labels["le"] != want[i].le || b.Value != want[i].cum {
			t.Errorf("bucket %d = le=%s %v, want le=%s %v", i, b.Labels["le"], b.Value, want[i].le, want[i].cum)
		}
	}
	if v, _ := m.Get("serve_latency_ns_sweep_sum"); v != 12000 {
		t.Errorf("histogram sum = %v, want 12000", v)
	}
	if v, _ := m.Get("serve_latency_ns_sweep_count"); v != 5 {
		t.Errorf("histogram count = %v, want 5", v)
	}

	// The router's own instruments federate as source "router".
	if _, ok := m.GetLabeled("shard_requests_metrics_total", map[string]string{"backend": "router"}); !ok {
		t.Error("router's own counters missing from the fleet exposition")
	}
}

// TestRouterFleetMetricsDegraded: an unscrapable backend becomes a
// comment, and the rest of the fleet still merges.
func TestRouterFleetMetricsDegraded(t *testing.T) {
	a := newFakeWorker(t, 0)
	a.metricsText = worker0Metrics
	b := newFakeWorker(t, 1)
	b.metricsText = "bogus exposition without a TYPE line\n"
	rt := newTestRouter(t, Options{}, a, b)

	w := do(t, rt, http.MethodGet, "/v1/metrics?fleet=1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("fleet scrape = %d", w.Code)
	}
	body := w.Body.String()
	if !strings.Contains(body, "# fleet: backend 1") {
		t.Errorf("no degradation comment for backend 1:\n%s", body)
	}
	m, err := promtext.Parse(body)
	if err != nil {
		t.Fatalf("degraded exposition does not parse: %v", err)
	}
	if v, _ := m.Get("serve_requests_sweep_total"); v != 3 {
		t.Errorf("aggregate from surviving worker = %v, want 3", v)
	}
}

// seriesBuckets returns one series' cumulative buckets (selected by
// backend label; "" = the unlabeled aggregate), sorted by bound.
func seriesBuckets(m *promtext.Metrics, family, backend string) []promtext.Sample {
	var out []promtext.Sample
	for _, s := range m.Samples {
		if s.Name != family+"_bucket" || s.Labels["backend"] != backend {
			continue
		}
		if backend == "" && len(s.Labels) != 1 {
			continue
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return leBound(out[i].Labels["le"]) < leBound(out[j].Labels["le"])
	})
	return out
}

func leBound(le string) float64 {
	if le == "+Inf" {
		return math.Inf(1)
	}
	var v float64
	for _, c := range le {
		v = v*10 + float64(c-'0')
	}
	return v
}

// bucketQuantile answers "which bucket bound covers quantile q" from a
// cumulative bucket series — the resolution a power-of-two histogram
// actually has.
func bucketQuantile(buckets []promtext.Sample, q float64) string {
	total := buckets[len(buckets)-1].Value
	rank := math.Ceil(q * total)
	if rank < 1 {
		rank = 1
	}
	for _, b := range buckets {
		if b.Value >= rank {
			return b.Labels["le"]
		}
	}
	return "+Inf"
}

// TestFleetHistogramQuantileExactness: two workers each observe half of
// a population into power-of-two histograms; the fleet-merged histogram
// must equal — bucket for bucket, and therefore at every quantile — one
// histogram that observed the whole population. This is the property
// that makes ?fleet=1 trustworthy for latency dashboards: merging loses
// nothing beyond the grid resolution each worker already had.
func TestFleetHistogramQuantileExactness(t *testing.T) {
	recA, recB, recAll := obs.New(), obs.New(), obs.New()
	hA := recA.Histogram("test.latency_ns")
	hB := recB.Histogram("test.latency_ns")
	hAll := recAll.Histogram("test.latency_ns")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		// Log-uniform latencies spanning ~9 decades, split across the
		// two workers like a load balancer would.
		v := int64(math.Exp(rng.Float64() * 20))
		if i%2 == 0 {
			hA.Observe(v)
		} else {
			hB.Observe(v)
		}
		hAll.Observe(v)
	}
	render := func(r *obs.Recorder) string {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a := newFakeWorker(t, 0)
	a.metricsText = render(recA)
	b := newFakeWorker(t, 1)
	b.metricsText = render(recB)
	rt := newTestRouter(t, Options{}, a, b)
	m := fleetScrape(t, rt)

	whole, err := promtext.Parse(render(recAll))
	if err != nil {
		t.Fatal(err)
	}
	merged := seriesBuckets(m, "test_latency_ns", "")
	want := whole.Buckets("test_latency_ns")
	if len(merged) != len(want) {
		t.Fatalf("merged has %d buckets, whole population %d", len(merged), len(want))
	}
	for i := range merged {
		if merged[i].Labels["le"] != want[i].Labels["le"] || merged[i].Value != want[i].Value {
			t.Errorf("bucket %d: merged le=%s %v, whole le=%s %v",
				i, merged[i].Labels["le"], merged[i].Value, want[i].Labels["le"], want[i].Value)
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := bucketQuantile(merged, q), bucketQuantile(want, q); got != want {
			t.Errorf("p%g: merged %s, whole population %s", q*100, got, want)
		}
	}
	mergedSum, _ := m.Get("test_latency_ns_sum")
	wholeSum, _ := whole.Get("test_latency_ns_sum")
	if mergedSum != wholeSum {
		t.Errorf("merged sum %v != whole-population sum %v", mergedSum, wholeSum)
	}
}
