package mesh

import (
	"testing"

	"compoundthreat/internal/geo"
	"compoundthreat/internal/terrain"
)

func BenchmarkBuildOahu(b *testing.B) {
	tm := terrain.NewOahu()
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Build(tm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearest(b *testing.B) {
	m, err := Build(terrain.NewOahu(), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	p := geo.XY{X: 1000, Y: -15000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Nearest(p, 5, nil)
	}
}
