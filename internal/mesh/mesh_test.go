package mesh

import (
	"math"
	"testing"

	"compoundthreat/internal/geo"
	"compoundthreat/internal/terrain"
)

func testIsland(t *testing.T) *terrain.Model {
	t.Helper()
	m, err := terrain.New(terrain.Config{
		Name:   "TestIsland",
		Origin: geo.Point{Lat: 0, Lon: 0},
		Coastline: []geo.Point{
			{Lat: -0.09, Lon: -0.09},
			{Lat: -0.09, Lon: 0.09},
			{Lat: 0.09, Lon: 0.09},
			{Lat: 0.09, Lon: -0.09},
		},
		CoastalRampSlope:        0.005,
		CoastalPlainWidthMeters: 2000,
		InlandSlope:             0.02,
		OffshoreSlope:           0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testConfig() Config {
	return Config{
		MinCellMeters:   800,
		MaxCellMeters:   6400,
		Grading:         0.4,
		ShoreBandMeters: 1500,
		BufferMeters:    8000,
	}
}

func buildTest(t *testing.T) *Mesh {
	t.Helper()
	m, err := Build(testIsland(t), testConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"zero min cell", func(c *Config) { c.MinCellMeters = 0 }, false},
		{"max below min", func(c *Config) { c.MaxCellMeters = 100 }, false},
		{"zero grading", func(c *Config) { c.Grading = 0 }, false},
		{"zero shore band", func(c *Config) { c.ShoreBandMeters = 0 }, false},
		{"negative buffer", func(c *Config) { c.BufferMeters = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate: %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Error("Validate: nil, want error")
			}
		})
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestBuildGrading(t *testing.T) {
	tm := testIsland(t)
	m := buildTest(t)
	if m.NumNodes() < 100 {
		t.Fatalf("nodes = %d, want >= 100", m.NumNodes())
	}
	cfg := testConfig()
	for _, n := range m.Nodes() {
		if n.CellSizeMeters < cfg.MinCellMeters*0.999 || n.CellSizeMeters > cfg.MaxCellMeters*1.001 {
			t.Fatalf("cell size %v outside [%v, %v]", n.CellSizeMeters, cfg.MinCellMeters, cfg.MaxCellMeters)
		}
		d := tm.DistanceToCoast(n.Pos)
		allowed := math.Max(cfg.MinCellMeters, math.Min(cfg.MaxCellMeters, cfg.Grading*d))
		// A leaf may be up to 2x the allowed size when its child level
		// would undershoot MinCell; beyond that the grading is violated.
		if n.CellSizeMeters > 2*allowed*1.01 {
			t.Fatalf("cell %v at distance %v exceeds 2x allowed %v", n.CellSizeMeters, d, allowed)
		}
	}
}

func TestShorelineCellsAreFinest(t *testing.T) {
	m := buildTest(t)
	cfg := testConfig()
	shore := m.NodesOfClass(Shore)
	if len(shore) == 0 {
		t.Fatal("no shore nodes")
	}
	for _, n := range shore {
		if n.CellSizeMeters > cfg.MinCellMeters*2.01 {
			t.Errorf("shore node %d cell %v, want <= %v", n.ID, n.CellSizeMeters, 2*cfg.MinCellMeters)
		}
	}
}

func TestNodeClasses(t *testing.T) {
	tm := testIsland(t)
	m := buildTest(t)
	counts := map[Class]int{}
	for _, n := range m.Nodes() {
		counts[n.Class]++
		switch n.Class {
		case Land:
			if !tm.IsLand(n.Pos) {
				t.Fatalf("node %d classified Land but is water", n.ID)
			}
			if n.ElevationMeters <= 0 {
				t.Fatalf("land node %d elevation %v, want > 0", n.ID, n.ElevationMeters)
			}
		case Offshore:
			if tm.IsLand(n.Pos) {
				t.Fatalf("node %d classified Offshore but is land", n.ID)
			}
			if n.ElevationMeters >= 0 {
				t.Fatalf("offshore node %d elevation %v, want < 0", n.ID, n.ElevationMeters)
			}
		case Shore:
			if d := tm.DistanceToCoast(n.Pos); d > 1500 {
				t.Fatalf("shore node %d is %v m from coast", n.ID, d)
			}
		}
	}
	for _, c := range []Class{Offshore, Shore, Land} {
		if counts[c] == 0 {
			t.Errorf("no nodes of class %v", c)
		}
	}
}

func TestClassString(t *testing.T) {
	if Offshore.String() != "offshore" || Shore.String() != "shore" || Land.String() != "land" {
		t.Error("class strings wrong")
	}
	if got := Class(42).String(); got != "Class(42)" {
		t.Errorf("unknown class = %q", got)
	}
}

func TestNodeLookup(t *testing.T) {
	m := buildTest(t)
	n, err := m.Node(0)
	if err != nil {
		t.Fatalf("Node(0): %v", err)
	}
	if n.ID != 0 {
		t.Errorf("Node(0).ID = %d", n.ID)
	}
	if _, err := m.Node(-1); err == nil {
		t.Error("Node(-1) should error")
	}
	if _, err := m.Node(m.NumNodes()); err == nil {
		t.Error("Node(len) should error")
	}
}

func TestNodesWithin(t *testing.T) {
	m := buildTest(t)
	center := geo.XY{X: 0, Y: 0}
	within := m.NodesWithin(center, 5000)
	if len(within) == 0 {
		t.Fatal("no nodes within 5 km of center")
	}
	for i, n := range within {
		if d := geo.DistanceXY(n.Pos, center); d > 5000 {
			t.Fatalf("node at distance %v returned for radius 5000", d)
		}
		if i > 0 {
			prev := geo.DistanceXY(within[i-1].Pos, center)
			cur := geo.DistanceXY(n.Pos, center)
			if cur < prev {
				t.Fatal("NodesWithin not sorted by distance")
			}
		}
	}
	if got := m.NodesWithin(center, 0); got != nil {
		t.Errorf("radius 0 = %v nodes, want nil", len(got))
	}
}

func TestNodesWithinMatchesBruteForce(t *testing.T) {
	m := buildTest(t)
	p := geo.XY{X: 7000, Y: -3000}
	const radius = 9000
	want := 0
	for _, n := range m.Nodes() {
		if geo.DistanceXY(n.Pos, p) <= radius {
			want++
		}
	}
	if got := len(m.NodesWithin(p, radius)); got != want {
		t.Errorf("NodesWithin = %d nodes, brute force = %d", got, want)
	}
}

func TestNearest(t *testing.T) {
	m := buildTest(t)
	p := geo.XY{X: 100, Y: 100}
	got := m.Nearest(p, 5, nil)
	if len(got) != 5 {
		t.Fatalf("Nearest returned %d nodes, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if geo.DistanceXY(got[i].Pos, p) < geo.DistanceXY(got[i-1].Pos, p) {
			t.Fatal("Nearest not sorted")
		}
	}
	// Filtered query: only shore nodes.
	shoreOnly := m.Nearest(p, 3, func(n Node) bool { return n.Class == Shore })
	if len(shoreOnly) != 3 {
		t.Fatalf("filtered Nearest returned %d, want 3", len(shoreOnly))
	}
	for _, n := range shoreOnly {
		if n.Class != Shore {
			t.Errorf("filter violated: class %v", n.Class)
		}
	}
	if got := m.Nearest(p, 0, nil); got != nil {
		t.Error("Nearest(k=0) should be nil")
	}
}

func TestNearestExhaustsDomain(t *testing.T) {
	m := buildTest(t)
	// Ask for more land nodes than exist: should return all of them
	// rather than looping forever.
	land := m.NodesOfClass(Land)
	got := m.Nearest(geo.XY{X: 0, Y: 0}, len(land)+1000, func(n Node) bool { return n.Class == Land })
	if len(got) != len(land) {
		t.Errorf("exhaustive Nearest = %d nodes, want %d", len(got), len(land))
	}
}

func TestNodesDefensiveCopy(t *testing.T) {
	m := buildTest(t)
	out := m.Nodes()
	out[0].ElevationMeters = 99999
	n, err := m.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	if n.ElevationMeters == 99999 {
		t.Error("Nodes exposed internal slice")
	}
}

func TestBuildInvalidConfig(t *testing.T) {
	if _, err := Build(testIsland(t), Config{}); err == nil {
		t.Error("Build with zero config should error")
	}
}

func TestBuildOahu(t *testing.T) {
	if testing.Short() {
		t.Skip("oahu mesh build in -short mode")
	}
	m, err := Build(terrain.NewOahu(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() < 2000 {
		t.Errorf("Oahu mesh has %d nodes, want >= 2000", m.NumNodes())
	}
	if shore := m.NodesOfClass(Shore); len(shore) < 300 {
		t.Errorf("Oahu mesh has %d shore nodes, want >= 300", len(shore))
	}
}
