package mesh

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"compoundthreat/internal/geo"
	"compoundthreat/internal/terrain"
)

// Class labels a node by its position relative to the coastline.
type Class int

// Node classes.
const (
	Offshore Class = iota + 1
	Shore
	Land
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Offshore:
		return "offshore"
	case Shore:
		return "shore"
	case Land:
		return "land"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Node is one mesh node (a quadtree leaf-cell center).
type Node struct {
	ID              int
	Pos             geo.XY
	ElevationMeters float64
	Class           Class
	// CellSizeMeters is the side length of the quadtree leaf the node
	// represents.
	CellSizeMeters float64
}

// Config controls mesh grading.
type Config struct {
	// MinCellMeters is the finest cell size, used at the shoreline.
	MinCellMeters float64
	// MaxCellMeters is the coarsest cell size, used far from shore.
	MaxCellMeters float64
	// Grading is the allowed cell growth per meter of distance from the
	// coast (e.g. 0.3 allows a 3 km cell 10 km from shore).
	Grading float64
	// ShoreBandMeters classifies nodes within this distance of the
	// coastline as Shore nodes.
	ShoreBandMeters float64
	// BufferMeters extends the meshed domain beyond the coastline
	// bounding box.
	BufferMeters float64
}

// DefaultConfig returns the grading used by the Oahu case study.
func DefaultConfig() Config {
	return Config{
		MinCellMeters:   500,
		MaxCellMeters:   8000,
		Grading:         0.4,
		ShoreBandMeters: 1200,
		BufferMeters:    10000,
	}
}

// Validate reports the first configuration problem found.
func (c Config) Validate() error {
	switch {
	case c.MinCellMeters <= 0:
		return errors.New("mesh: MinCellMeters must be positive")
	case c.MaxCellMeters < c.MinCellMeters:
		return errors.New("mesh: MaxCellMeters must be >= MinCellMeters")
	case c.Grading <= 0:
		return errors.New("mesh: Grading must be positive")
	case c.ShoreBandMeters <= 0:
		return errors.New("mesh: ShoreBandMeters must be positive")
	case c.BufferMeters < 0:
		return errors.New("mesh: BufferMeters must be non-negative")
	}
	return nil
}

// Mesh is an immutable graded discretization. Methods are safe for
// concurrent use.
type Mesh struct {
	cfg   Config
	nodes []Node
	// bucket spatial index for radius/nearest queries.
	bucketSize float64
	buckets    map[[2]int][]int
	minPt      geo.XY
}

// Build meshes the region covered by the terrain model.
func Build(tm *terrain.Model, cfg Config) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	minPt, maxPt := tm.Coastline().Bounds()
	minPt = minPt.Sub(geo.XY{X: cfg.BufferMeters, Y: cfg.BufferMeters})
	maxPt = maxPt.Add(geo.XY{X: cfg.BufferMeters, Y: cfg.BufferMeters})

	m := &Mesh{
		cfg:        cfg,
		bucketSize: math.Max(cfg.MinCellMeters*4, 1),
		buckets:    make(map[[2]int][]int),
		minPt:      minPt,
	}

	// Tile the domain with root cells of MaxCellMeters and refine each
	// recursively toward the coast.
	size := cfg.MaxCellMeters
	nx := int(math.Ceil((maxPt.X - minPt.X) / size))
	ny := int(math.Ceil((maxPt.Y - minPt.Y) / size))
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			center := geo.XY{
				X: minPt.X + (float64(ix)+0.5)*size,
				Y: minPt.Y + (float64(iy)+0.5)*size,
			}
			m.refine(tm, center, size)
		}
	}
	if len(m.nodes) == 0 {
		return nil, errors.New("mesh: empty domain")
	}
	return m, nil
}

// refine recursively subdivides the cell at center until its size obeys
// the grading rule, then emits a node.
func (m *Mesh) refine(tm *terrain.Model, center geo.XY, size float64) {
	d := tm.DistanceToCoast(center)
	allowed := math.Max(m.cfg.MinCellMeters,
		math.Min(m.cfg.MaxCellMeters, m.cfg.Grading*d))
	// Subdivide only when the cell is more than marginally oversized;
	// the half-size guard keeps refinement from overshooting MinCell.
	if size > allowed*1.01 && size/2 >= m.cfg.MinCellMeters*0.999 {
		q := size / 4
		for _, off := range [4]geo.XY{
			{X: -q, Y: -q}, {X: q, Y: -q}, {X: -q, Y: q}, {X: q, Y: q},
		} {
			m.refine(tm, center.Add(off), size/2)
		}
		return
	}
	m.emit(tm, center, size, d)
}

func (m *Mesh) emit(tm *terrain.Model, center geo.XY, size, distToCoast float64) {
	class := Offshore
	switch {
	case distToCoast <= m.cfg.ShoreBandMeters:
		class = Shore
	case tm.IsLand(center):
		class = Land
	}
	n := Node{
		ID:              len(m.nodes),
		Pos:             center,
		ElevationMeters: tm.ElevationAt(center),
		Class:           class,
		CellSizeMeters:  size,
	}
	m.nodes = append(m.nodes, n)
	key := m.bucketKey(center)
	m.buckets[key] = append(m.buckets[key], n.ID)
}

func (m *Mesh) bucketKey(p geo.XY) [2]int {
	return [2]int{
		int(math.Floor((p.X - m.minPt.X) / m.bucketSize)),
		int(math.Floor((p.Y - m.minPt.Y) / m.bucketSize)),
	}
}

// NumNodes returns the node count.
func (m *Mesh) NumNodes() int { return len(m.nodes) }

// Node returns the node with the given ID.
func (m *Mesh) Node(id int) (Node, error) {
	if id < 0 || id >= len(m.nodes) {
		return Node{}, fmt.Errorf("mesh: node %d out of range [0, %d)", id, len(m.nodes))
	}
	return m.nodes[id], nil
}

// Nodes returns a copy of all nodes.
func (m *Mesh) Nodes() []Node {
	out := make([]Node, len(m.nodes))
	copy(out, m.nodes)
	return out
}

// NodesOfClass returns all nodes with the given class.
func (m *Mesh) NodesOfClass(c Class) []Node {
	var out []Node
	for _, n := range m.nodes {
		if n.Class == c {
			out = append(out, n)
		}
	}
	return out
}

// NodesWithin returns the nodes within radius of p, sorted by distance.
func (m *Mesh) NodesWithin(p geo.XY, radius float64) []Node {
	if radius <= 0 {
		return nil
	}
	k := m.bucketKey(p)
	span := int(math.Ceil(radius/m.bucketSize)) + 1
	var out []Node
	for dy := -span; dy <= span; dy++ {
		for dx := -span; dx <= span; dx++ {
			for _, id := range m.buckets[[2]int{k[0] + dx, k[1] + dy}] {
				n := m.nodes[id]
				if geo.DistanceXY(n.Pos, p) <= radius {
					out = append(out, n)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return geo.DistanceXY(out[i].Pos, p) < geo.DistanceXY(out[j].Pos, p)
	})
	return out
}

// Nearest returns up to k nodes nearest to p that satisfy the filter
// (nil filter accepts all), sorted by distance. It expands its search
// radius geometrically until enough nodes are found or the whole mesh
// has been scanned.
func (m *Mesh) Nearest(p geo.XY, k int, filter func(Node) bool) []Node {
	if k <= 0 {
		return nil
	}
	accept := filter
	if accept == nil {
		accept = func(Node) bool { return true }
	}
	radius := m.bucketSize
	for {
		candidates := m.NodesWithin(p, radius)
		var hits []Node
		for _, n := range candidates {
			if accept(n) {
				hits = append(hits, n)
			}
		}
		if len(hits) >= k {
			return hits[:k]
		}
		if radius > 4*m.cfg.MaxCellMeters+maxDomainSpan(m) {
			return hits // whole domain scanned
		}
		radius *= 2
	}
}

func maxDomainSpan(m *Mesh) float64 {
	// A loose upper bound on the domain diagonal derived from buckets.
	var maxX, maxY int
	for k := range m.buckets {
		if k[0] > maxX {
			maxX = k[0]
		}
		if k[1] > maxY {
			maxY = k[1]
		}
	}
	return m.bucketSize * math.Hypot(float64(maxX+1), float64(maxY+1))
}
