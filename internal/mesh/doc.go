// Package mesh builds a graded quadtree discretization of the study
// region: fine cells along the shoreline (where surge gradients are
// steep) that coarsen with distance from the coast, mirroring the way
// coastal surge models like the paper's ADCIRC run concentrate
// resolution near the shore.
//
// [Build] refines a quadtree over a terrain.Model under a [Config]
// (MinCellMeters/MaxCellMeters bounds, a Grading growth rate, and the
// ShoreBandMeters classification band) and emits [Node]s classified
// by [Class] — offshore, shore, inland — with spatial queries
// (NodesWithin, nearest-by-class) for consumers sampling the region.
// The paper notes its ADCIRC mesh was *coarse* near the shoreline,
// which produced spotty water-surface elevations that had to be
// averaged and extended onto land; this package models the
// discretization side of that story, and `hazardgen -map` renders
// inundation over it.
//
// A built [Mesh] is immutable and safe for concurrent readers; all
// construction cost is paid once in Build.
package mesh
