package obs

import (
	"flag"
	"fmt"
	"io"
)

// CLI wires the standard observability flags shared by the command
// line tools: -metrics <file> writes a JSON run report on exit and
// -pprof <addr> serves net/http/pprof for the lifetime of the run.
//
// Usage inside a command's run() function:
//
//	var cli obs.CLI
//	cli.Register(fs)
//	// ... fs.Parse ...
//	if err := cli.Start("toolname", args, os.Stderr); err != nil {
//	    return err
//	}
//	defer func() {
//	    if cerr := cli.Close(); err == nil {
//	        err = cerr
//	    }
//	}()
//
// Close must run on every exit path (hence the run() error pattern in
// the commands: deferred cleanup cannot run when main os.Exits
// directly), otherwise the report is never flushed and the pprof
// listener leaks.
type CLI struct {
	// MetricsPath is the -metrics flag value.
	MetricsPath string
	// PprofAddr is the -pprof flag value.
	PprofAddr string

	command   string
	args      []string
	rec       *Recorder
	stopPprof func() error
}

// Register binds the -metrics and -pprof flags.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsPath, "metrics", "", "write a JSON run report to this file")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Start enables the process-wide recorder (when -metrics was given)
// and starts the pprof listener (when -pprof was given). diag, when
// non-nil, receives one line announcing the pprof address.
func (c *CLI) Start(command string, args []string, diag io.Writer) error {
	c.command = command
	c.args = args
	if c.MetricsPath != "" {
		c.rec = New()
		Enable(c.rec)
	}
	if c.PprofAddr != "" {
		bound, stop, err := StartPprof(c.PprofAddr)
		if err != nil {
			return err
		}
		c.stopPprof = stop
		if diag != nil {
			fmt.Fprintf(diag, "pprof listening on http://%s/debug/pprof/\n", bound)
		}
	}
	return nil
}

// Recorder returns the run's recorder (nil when -metrics was not
// given; all Recorder methods are nil-safe).
func (c *CLI) Recorder() *Recorder { return c.rec }

// Close stops the pprof listener, disables the process-wide recorder,
// and flushes the run report. It is idempotent.
func (c *CLI) Close() error {
	var first error
	if c.stopPprof != nil {
		first = c.stopPprof()
		c.stopPprof = nil
	}
	if c.rec != nil {
		Enable(nil)
		if err := c.rec.WriteReportFile(c.MetricsPath, c.command, c.args); err != nil && first == nil {
			first = err
		}
		c.rec = nil
	}
	return first
}
