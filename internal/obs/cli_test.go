package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
)

// TestCLILifecycle drives the full flag -> Start -> record -> Close
// flow and checks the report lands on disk with the recorded data.
func TestCLILifecycle(t *testing.T) {
	path := t.TempDir() + "/run.json"
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	var cli CLI
	cli.Register(fs)
	if err := fs.Parse([]string{"-metrics", path}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Start("tool", []string{"-metrics", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if Default() == nil {
		t.Fatal("Start must enable the default recorder when -metrics is set")
	}
	Default().Counter("tool.work").Add(3)
	cli.Recorder().Put("answer", 42)
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if Default() != nil {
		t.Fatal("Close must disable the default recorder")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != ReportSchema || rep.Command != "tool" {
		t.Fatalf("report header = %q/%q", rep.Schema, rep.Command)
	}
	if rep.Counters["tool.work"] != 3 {
		t.Fatalf("counters = %v", rep.Counters)
	}

	// Close is idempotent.
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCLIDisabled checks that without flags Start/Close are inert.
func TestCLIDisabled(t *testing.T) {
	var cli CLI
	if err := cli.Start("tool", nil, io.Discard); err != nil {
		t.Fatal(err)
	}
	if Default() != nil {
		t.Fatal("recorder enabled without -metrics")
	}
	if cli.Recorder() != nil {
		t.Fatal("Recorder() must be nil without -metrics")
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCLIPprof starts the pprof listener on an ephemeral port, fetches
// the index, and shuts it down.
func TestCLIPprof(t *testing.T) {
	var diag bytes.Buffer
	cli := CLI{PprofAddr: "127.0.0.1:0"}
	if err := cli.Start("tool", nil, &diag); err != nil {
		t.Fatal(err)
	}
	line := diag.String()
	if !strings.Contains(line, "pprof listening on") {
		t.Fatalf("diagnostic line = %q", line)
	}
	url := strings.TrimSpace(strings.TrimPrefix(line, "pprof listening on "))
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("profile")) {
		t.Fatalf("pprof index status %d body %q", resp.StatusCode, body[:min(len(body), 200)])
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	// The listener is down after Close.
	if _, err := http.Get(url); err == nil {
		t.Fatal("pprof listener still serving after Close")
	}
}
