package obs

import (
	"testing"
	"time"
)

// TestRuntimeSampler starts the sampler and checks the gauges carry a
// real first sample immediately, then stops it (twice — stop must be
// idempotent).
func TestRuntimeSampler(t *testing.T) {
	r := New()
	stop := StartRuntimeSampler(r, time.Hour) // immediate sample, no ticks
	defer stop()
	if r.Gauge("runtime.goroutines").Value() <= 0 {
		t.Fatal("goroutine gauge not sampled")
	}
	if r.Gauge("runtime.heap_alloc_bytes").Value() <= 0 {
		t.Fatal("heap gauge not sampled")
	}
	if r.Counter("runtime.samples").Value() != 1 {
		t.Fatalf("samples = %d, want exactly the immediate one", r.Counter("runtime.samples").Value())
	}
	stop()
	stop()
}

// TestRuntimeSamplerTicks checks periodic sampling actually fires.
func TestRuntimeSamplerTicks(t *testing.T) {
	r := New()
	stop := StartRuntimeSampler(r, time.Millisecond)
	defer stop()
	deadline := time.After(2 * time.Second)
	for r.Counter("runtime.samples").Value() < 3 {
		select {
		case <-deadline:
			t.Fatal("sampler did not tick within 2s")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestRuntimeSamplerDisabled checks the no-op paths.
func TestRuntimeSamplerDisabled(t *testing.T) {
	StartRuntimeSampler(nil, time.Second)()  // nil recorder
	StartRuntimeSampler(New(), 0)()          // non-positive interval
	StartRuntimeSampler(New(), -time.Hour)() // ditto
}
