package obs

import (
	"strings"
	"testing"
	"time"

	"compoundthreat/internal/promtext"
)

// render writes the recorder's Prometheus exposition to a string and
// parses it with the test-side parser, failing the test on either
// error.
func render(t *testing.T, r *Recorder) *promtext.Metrics {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	m, err := promtext.Parse(sb.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, sb.String())
	}
	return m
}

// TestWritePrometheus renders every instrument kind and checks the
// mapped families and values.
func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("serve.requests.sweep").Add(7)
	g := r.Gauge("serve.inflight")
	g.Set(5)
	g.Set(2)
	tm := r.Timer("engine.evaluate")
	tm.Record(3 * time.Millisecond)
	tm.Record(5 * time.Millisecond)
	h := r.Histogram("serve.latency_ns.sweep")
	for _, v := range []int64{1, 3, 3, 1000} {
		h.Observe(v)
	}

	m := render(t, r)

	if v, ok := m.Get("serve_requests_sweep_total"); !ok || v != 7 {
		t.Fatalf("counter = %v (present=%v), want 7", v, ok)
	}
	if v, _ := m.Get("serve_inflight"); v != 2 {
		t.Fatalf("gauge level = %v, want 2", v)
	}
	if v, _ := m.Get("serve_inflight_high"); v != 5 {
		t.Fatalf("gauge high-water = %v, want 5", v)
	}
	if v, _ := m.Get("engine_evaluate_ns_count"); v != 2 {
		t.Fatalf("timer count = %v, want 2", v)
	}
	if v, _ := m.Get("engine_evaluate_ns_sum"); v != float64((8 * time.Millisecond).Nanoseconds()) {
		t.Fatalf("timer sum = %v", v)
	}
	if v, _ := m.Get("engine_evaluate_ns_min"); v != float64((3 * time.Millisecond).Nanoseconds()) {
		t.Fatalf("timer min = %v", v)
	}
	if v, _ := m.Get("engine_evaluate_ns_max"); v != float64((5 * time.Millisecond).Nanoseconds()) {
		t.Fatalf("timer max = %v", v)
	}

	// Power-of-two buckets: 1 lands in [1,2), 3 twice in [2,4), 1000 in
	// [512,1024) — cumulative counts at the exact le bounds.
	buckets := m.Buckets("serve_latency_ns_sweep")
	want := map[string]float64{"2": 1, "4": 3, "1024": 4, "+Inf": 4}
	if len(buckets) != len(want) {
		t.Fatalf("bucket count = %d (%v), want %d", len(buckets), buckets, len(want))
	}
	for _, b := range buckets {
		if want[b.Labels["le"]] != b.Value {
			t.Fatalf("bucket le=%q = %v, want %v", b.Labels["le"], b.Value, want[b.Labels["le"]])
		}
	}
	if v, _ := m.Get("serve_latency_ns_sweep_sum"); v != 1007 {
		t.Fatalf("histogram sum = %v, want 1007", v)
	}
}

// TestWritePrometheusEdgeBuckets checks the exposition of the two
// unbounded-ish buckets: non-positive observations (le="0") and the
// last internal bucket, which has no finite bound and must fold only
// into +Inf.
func TestWritePrometheusEdgeBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	h.Observe(-5)
	h.Observe(0)
	h.Observe(int64(1) << 40) // beyond the finite buckets
	m := render(t, r)
	buckets := m.Buckets("h")
	if buckets[0].Labels["le"] != "0" || buckets[0].Value != 2 {
		t.Fatalf("non-positive bucket = %+v, want le=0 count=2", buckets[0])
	}
	last := buckets[len(buckets)-1]
	if last.Labels["le"] != "+Inf" || last.Value != 3 {
		t.Fatalf("+Inf bucket = %+v, want 3", last)
	}
	if len(buckets) != 2 {
		t.Fatalf("oversized observation leaked a finite bucket: %v", buckets)
	}
}

// TestWritePrometheusNil checks a nil recorder still writes valid
// (empty) exposition — a scrape of a disabled server must not 500.
func TestWritePrometheusNil(t *testing.T) {
	var r *Recorder
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("nil recorder: %v", err)
	}
	if !strings.HasPrefix(sb.String(), "#") {
		t.Fatalf("nil exposition = %q, want a comment line", sb.String())
	}
	if _, err := promtext.Parse(sb.String()); err != nil {
		t.Fatalf("nil exposition does not parse: %v", err)
	}
}

// TestPromName pins the instrument-name sanitizer.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.latency_ns.sweep": "serve_latency_ns_sweep",
		"9lives":                 "_9lives",
		"ok_name":                "ok_name",
		"weird-emoji_☃":          "weird_emoji__",
		"":                       "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
