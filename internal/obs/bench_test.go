package obs

// Allocation benchmarks for the two instrumentation modes. The
// disabled (nil recorder) path is what every hot loop in the engine
// pays when observability is off: it must report 0 allocs/op and a
// few tenths of a nanosecond. The enabled path must also be
// allocation-free once instruments are resolved — the run report is
// built from atomics, never from per-event allocations.

import (
	"testing"
	"time"
)

// BenchmarkNoopCounter measures Counter.Add on a nil counter.
func BenchmarkNoopCounter(b *testing.B) {
	var r *Recorder
	c := r.Counter("c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkNoopSpan measures StartSpan/End on a nil recorder: no
// clock reads, no allocations.
func BenchmarkNoopSpan(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StartSpan("phase").End()
	}
}

// BenchmarkNoopHistogram measures Observe on a nil histogram.
func BenchmarkNoopHistogram(b *testing.B) {
	var r *Recorder
	h := r.Histogram("h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkEnabledCounter measures the live atomic-add path.
func BenchmarkEnabledCounter(b *testing.B) {
	r := New()
	c := r.Counter("c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledHistogram measures the live observe path (atomic
// count/sum/min/max plus one bucket add).
func BenchmarkEnabledHistogram(b *testing.B) {
	r := New()
	h := r.Histogram("h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkEnabledSpan measures a full live span: one timer lookup,
// two monotonic clock reads, one record.
func BenchmarkEnabledSpan(b *testing.B) {
	r := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StartSpan("phase").End()
	}
}

// BenchmarkEnabledTimer measures Timer.Record alone.
func BenchmarkEnabledTimer(b *testing.B) {
	r := New()
	t := r.Timer("t")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Record(time.Microsecond)
	}
}
