package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestGaugeLevelAndHighWater: the gauge tracks the instantaneous level
// and, separately, the highest level ever reached.
func TestGaugeLevelAndHighWater(t *testing.T) {
	r := New()
	g := r.Gauge("serve.inflight")
	g.Inc()
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 2 {
		t.Errorf("Value() = %d, want 2", got)
	}
	if got := g.High(); got != 3 {
		t.Errorf("High() = %d, want 3", got)
	}
	g.Set(10)
	g.Add(-10)
	if got, high := g.Value(), g.High(); got != 0 || high != 10 {
		t.Errorf("after Set(10)+Add(-10): value %d high %d, want 0 / 10", got, high)
	}
}

// TestGaugeNilSafe: all methods no-op on a nil gauge, matching the
// package's nil-instrument contract.
func TestGaugeNilSafe(t *testing.T) {
	var g *Gauge
	g.Inc()
	g.Dec()
	g.Add(5)
	g.Set(7)
	if g.Value() != 0 || g.High() != 0 {
		t.Error("nil gauge must read zero")
	}
	var r *Recorder
	if r.Gauge("x") != nil {
		t.Error("nil recorder must resolve a nil gauge")
	}
}

// TestGaugeConcurrent hammers one gauge from many goroutines; the level
// must return to zero and the high-water mark must never exceed the
// goroutine count (every goroutine holds at most one increment).
func TestGaugeConcurrent(t *testing.T) {
	r := New()
	g := r.Gauge("g")
	const workers = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("final level = %d, want 0", got)
	}
	if high := g.High(); high < 1 || high > workers {
		t.Errorf("high-water mark = %d, want within [1, %d]", high, workers)
	}
}

// TestReportGauges: a run that resolved gauges gets a gauges section
// with value and high-water mark; runs without gauges omit the section
// entirely (keeping schema v1, as the golden test proves).
func TestReportGauges(t *testing.T) {
	r := New()
	rep := r.Report("threatserver", nil)
	if rep.Gauges != nil {
		t.Fatal("report without gauges must omit the gauges section")
	}
	g := r.Gauge("serve.inflight")
	g.Set(4)
	g.Set(1)
	rep = r.Report("threatserver", nil)
	gr, ok := rep.Gauges["serve.inflight"]
	if !ok {
		t.Fatal("gauges section missing serve.inflight")
	}
	if gr.Value != 1 || gr.High != 4 {
		t.Errorf("gauge report = %+v, want value 1 high 4", gr)
	}
	var buf strings.Builder
	if err := r.WriteReport(&buf, "threatserver", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"gauges"`) {
		t.Errorf("rendered report lacks gauges section:\n%s", buf.String())
	}
}
