package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTimerMinMax covers the accessor edge cases: empty timer reads
// zero (the internal min sentinel must not leak), then tracks real
// extremes.
func TestTimerMinMax(t *testing.T) {
	tm := New().Timer("t")
	if tm.Min() != 0 || tm.Max() != 0 {
		t.Fatalf("empty timer min/max = %v/%v, want 0/0", tm.Min(), tm.Max())
	}
	tm.Record(5 * time.Millisecond)
	tm.Record(2 * time.Millisecond)
	tm.Record(9 * time.Millisecond)
	if tm.Min() != 2*time.Millisecond || tm.Max() != 9*time.Millisecond {
		t.Fatalf("min/max = %v/%v, want 2ms/9ms", tm.Min(), tm.Max())
	}
	var nilT *Timer
	if nilT.Min() != 0 || nilT.Max() != 0 {
		t.Fatal("nil timer min/max must be 0")
	}
}

// TestHistogramMinMax mirrors the timer accessor checks, including
// negative observations (the max sentinel must not leak either).
func TestHistogramMinMax(t *testing.T) {
	h := New().Histogram("h")
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram min/max = %d/%d, want 0/0", h.Min(), h.Max())
	}
	h.Observe(-3)
	if h.Min() != -3 || h.Max() != -3 {
		t.Fatalf("single negative observation min/max = %d/%d, want -3/-3", h.Min(), h.Max())
	}
	h.Observe(100)
	if h.Min() != -3 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d, want -3/100", h.Min(), h.Max())
	}
	var nilH *Histogram
	if nilH.Min() != 0 || nilH.Max() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram accessors must be 0")
	}
}

// TestHistogramQuantile checks the estimator against known
// distributions: exact at the extremes (clamped to observed min/max),
// within one power-of-two bucket in between, and well-defined on the
// edge cases (empty, single value, out-of-range q, bucket boundary).
func TestHistogramQuantile(t *testing.T) {
	empty := New().Histogram("e")
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}

	single := New().Histogram("s")
	single.Observe(42)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := single.Quantile(q); got != 42 {
			t.Fatalf("single-value Quantile(%v) = %v, want 42", q, got)
		}
	}

	// Uniform 1..1000: every quantile estimate must land within the
	// power-of-two bucket that truly contains the rank.
	u := New().Histogram("u")
	for v := int64(1); v <= 1000; v++ {
		u.Observe(v)
	}
	if got := u.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want exact min 1", got)
	}
	if got := u.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %v, want exact max 1000", got)
	}
	for _, tc := range []struct{ q, lo, hi float64 }{
		{0.5, 256, 512},  // true p50 = 500, bucket [256,512)
		{0.9, 512, 1000}, // true p90 = 900, bucket [512,1024) clamped to max
		{0.05, 32, 64},   // true p5 = 50
	} {
		got := u.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Fatalf("Quantile(%v) = %v, want within [%v, %v]", tc.q, got, tc.lo, tc.hi)
		}
	}
	// Monotone in q.
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := u.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: Quantile(%v) = %v < %v", q, got, prev)
		}
		prev = got
	}

	// Bucket boundary: all mass exactly on a power of two.
	b := New().Histogram("b")
	for i := 0; i < 10; i++ {
		b.Observe(1024)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := b.Quantile(q); got != 1024 {
			t.Fatalf("boundary Quantile(%v) = %v, want 1024", q, got)
		}
	}
}

// TestRecorderConcurrentResolution resolves the same instrument names
// from many goroutines; every goroutine must get the identical
// instrument (run with -race to also prove resolution is race-free).
func TestRecorderConcurrentResolution(t *testing.T) {
	r := New()
	const workers = 8
	var wg sync.WaitGroup
	counters := make([]*Counter, workers)
	timers := make([]*Timer, workers)
	hists := make([]*Histogram, workers)
	gauges := make([]*Gauge, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				counters[w] = r.Counter("shared.counter")
				timers[w] = r.Timer("shared.timer")
				hists[w] = r.Histogram("shared.hist")
				gauges[w] = r.Gauge("shared.gauge")
				counters[w].Inc()
			}
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if counters[w] != counters[0] || timers[w] != timers[0] ||
			hists[w] != hists[0] || gauges[w] != gauges[0] {
			t.Fatalf("goroutine %d resolved different instruments for the same names", w)
		}
	}
	if got := counters[0].Value(); got != workers*100 {
		t.Fatalf("shared counter = %d, want %d", got, workers*100)
	}
}
