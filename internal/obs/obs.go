// Package obs is the zero-dependency observability layer of the
// analysis pipeline: atomic counters, monotonic timers with a span API
// for phase timing, and power-of-two histograms, aggregated by a
// Recorder that renders one machine-readable JSON run report. On top
// of the aggregates it offers request-scoped tracing (trace.go),
// Prometheus text exposition of every instrument (prom.go), and a
// background runtime sampler feeding gauges (runtime.go).
//
// Instrumentation is opt-in and allocation-free when disabled. The
// package-level Default recorder is nil until a CLI (or test) calls
// Enable; every method on a nil *Recorder, *Counter, *Timer,
// *Histogram, or zero Span is a safe no-op, so hot paths resolve their
// instruments once at construction time and pay a single nil-check
// branch per event when observability is off. When it is on, events
// cost one atomic add (counters/histograms) or one monotonic clock
// read (spans) — no locks and no allocations on the recording paths.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// defaultRecorder is the process-wide recorder used by instrumented
// code. It is nil (all instrumentation disabled) until Enable is
// called.
var defaultRecorder atomic.Pointer[Recorder]

// Enable installs r as the process-wide default recorder; Enable(nil)
// disables instrumentation again. Instruments already resolved from a
// previous recorder keep recording into it, so callers should enable
// observability before constructing the objects they want observed.
func Enable(r *Recorder) {
	defaultRecorder.Store(r)
}

// Default returns the process-wide recorder, or nil when
// instrumentation is disabled. All Recorder methods are nil-safe, so
// callers may use the result unconditionally.
func Default() *Recorder {
	return defaultRecorder.Load()
}

// Recorder aggregates named instruments and renders them as a run
// report. Instrument resolution (Counter, Timer, Histogram) takes a
// lock and is meant for construction-time code; the returned
// instruments record lock-free. A nil *Recorder resolves nil
// instruments, whose methods all no-op.
type Recorder struct {
	start time.Time
	now   func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	hists    map[string]*Histogram
	gauges   map[string]*Gauge
	results  map[string]any
}

// New returns an empty recorder using the real monotonic clock.
func New() *Recorder {
	return newRecorder(time.Now)
}

func newRecorder(now func() time.Time) *Recorder {
	return &Recorder{
		start:    now(),
		now:      now,
		counters: make(map[string]*Counter),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]*Gauge),
		results:  make(map[string]any),
	}
}

// Counter resolves (creating on first use) the named counter. Returns
// nil — a valid no-op counter — on a nil recorder.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer resolves (creating on first use) the named timer. Returns nil
// on a nil recorder.
func (r *Recorder) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = newTimer()
		r.timers[name] = t
	}
	return t
}

// Histogram resolves (creating on first use) the named histogram.
// Returns nil on a nil recorder.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Gauge resolves (creating on first use) the named gauge. Returns nil
// — a valid no-op gauge — on a nil recorder.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Put attaches an arbitrary JSON-renderable value to the run report's
// results section (e.g. per-figure state tallies). No-op on a nil
// recorder.
func (r *Recorder) Put(key string, v any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results[key] = v
}

// StartSpan starts timing one occurrence of the named phase; call End
// on the returned span to record it. On a nil recorder it returns a
// zero Span whose End is a no-op and performs no clock read.
func (r *Recorder) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, t: r.Timer(name), start: r.now()}
}

// Span is one in-flight phase timing. The zero Span is valid and
// records nothing.
type Span struct {
	r     *Recorder
	t     *Timer
	start time.Time
}

// End records the span's duration into its timer. Safe to call on a
// zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Record(s.r.now().Sub(s.start))
}

// Counter is a monotonically increasing atomic counter. A nil *Counter
// ignores all updates.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an instantaneous level — in-flight requests, queue depth,
// open connections — that moves both ways, unlike the monotonic
// Counter. Alongside the level it tracks the high-water mark, so a run
// report shows peak concurrency, not just whatever the level happened
// to be at snapshot time. A nil *Gauge ignores all updates.
type Gauge struct {
	n    atomic.Int64
	high atomic.Int64
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	v := g.n.Add(delta)
	atomicMax(&g.high, v)
}

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Set forces the gauge to v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.n.Store(v)
	atomicMax(&g.high, v)
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// High returns the high-water mark (0 for a nil gauge).
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.high.Load()
}

// Timer accumulates phase durations: occurrence count, total, min, and
// max, all maintained with atomics so concurrent workers may record
// into one timer. A nil *Timer ignores all updates.
type Timer struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
	min   atomic.Int64 // nanoseconds; MaxInt64 until first record
	max   atomic.Int64 // nanoseconds
}

func newTimer() *Timer {
	t := &Timer{}
	t.min.Store(int64(1<<63 - 1))
	return t
}

// Record adds one duration observation.
func (t *Timer) Record(d time.Duration) {
	if t == nil {
		return
	}
	ns := d.Nanoseconds()
	t.count.Add(1)
	t.total.Add(ns)
	atomicMin(&t.min, ns)
	atomicMax(&t.max, ns)
}

// Count returns the number of recorded durations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total.Load())
}

// Min returns the shortest recorded duration, or 0 before the first
// record (and on a nil timer).
func (t *Timer) Min() time.Duration {
	if t == nil || t.count.Load() == 0 {
		return 0
	}
	return time.Duration(t.min.Load())
}

// Max returns the longest recorded duration, or 0 before the first
// record (and on a nil timer).
func (t *Timer) Max() time.Duration {
	if t == nil || t.count.Load() == 0 {
		return 0
	}
	return time.Duration(t.max.Load())
}

// histBuckets is the number of power-of-two histogram buckets: bucket
// i counts observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i), which spans 1 ns to ~9.2 s when observing
// nanoseconds. Bucket 0 counts non-positive observations; the last
// bucket absorbs everything larger.
const histBuckets = 34

// Histogram is a fixed-size power-of-two histogram with atomic
// buckets, plus count/sum/min/max. A nil *Histogram ignores all
// updates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // MaxInt64 until first observation
	max     atomic.Int64 // MinInt64 until first observation
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(1<<63 - 1))
	h.max.Store(-int64(1<<63-1) - 1)
	return h
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	atomicMin(&h.min, v)
	atomicMax(&h.max, v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observation, or 0 before the first one (and
// on a nil histogram).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation, or 0 before the first one (and
// on a nil histogram).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observations
// from the power-of-two buckets: it finds the bucket holding the
// target rank, interpolates linearly inside the bucket's [2^(i-1),
// 2^i) bounds, and clamps the estimate to the exact observed min and
// max — so Quantile(0) is exactly Min, Quantile(1) is exactly Max, and
// everything between is accurate to within one power-of-two bucket.
// Returns 0 on an empty (or nil) histogram; q outside [0, 1] is
// clamped. The estimate is approximate while concurrent observations
// race the read, like every other snapshot in this package.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	min, max := float64(h.min.Load()), float64(h.max.Load())
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := q * float64(n)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo, hi := bucketBounds(i)
			v := lo + (hi-lo)*(rank-float64(cum))/float64(c)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
		cum += c
	}
	return max
}

// bucketBounds returns bucket i's [lo, hi) value range. Bucket 0
// holds non-positive observations; the last bucket has no upper bound
// and reports its lower power of two twice (Quantile clamps to the
// observed max anyway).
func bucketBounds(i int) (float64, float64) {
	if i <= 0 {
		return 0, 0
	}
	lo := float64(int64(1) << uint(i-1))
	if i >= histBuckets-1 {
		return lo, lo
	}
	return lo, float64(int64(1) << uint(i))
}

// atomicMin lowers p to v if v is smaller.
func atomicMin(p *atomic.Int64, v int64) {
	for {
		cur := p.Load()
		if v >= cur || p.CompareAndSwap(cur, v) {
			return
		}
	}
}

// atomicMax raises p to v if v is larger.
func atomicMax(p *atomic.Int64, v int64) {
	for {
		cur := p.Load()
		if v <= cur || p.CompareAndSwap(cur, v) {
			return
		}
	}
}
