package obs

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// StartPprof serves the net/http/pprof handlers on addr (e.g.
// "localhost:6060") and returns the bound address plus a function that
// shuts the listener down. The handlers are mounted on a private mux,
// not http.DefaultServeMux.
func StartPprof(addr string) (bound string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	done := make(chan error, 1)
	go func() {
		done <- srv.Serve(ln)
	}()
	stop = func() error {
		if err := srv.Close(); err != nil {
			return err
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
	return ln.Addr().String(), stop, nil
}
