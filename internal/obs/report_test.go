package obs

import (
	"bytes"
	"testing"
	"time"
)

// fakeClock yields deterministic timestamps advancing by a fixed step
// per reading.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	t := c.t
	c.t = c.t.Add(c.step)
	return t
}

// TestReportGolden pins the run-report JSON schema byte for byte: a
// recorder with an injected clock and a known set of instruments must
// render exactly this document. Update the golden text deliberately
// when the schema changes, and bump ReportSchema.
func TestReportGolden(t *testing.T) {
	clock := &fakeClock{
		t:    time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		step: 250 * time.Millisecond,
	}
	r := newRecorder(clock.now)

	r.Counter("engine.memo_hits").Add(995)
	r.Counter("engine.memo_misses").Add(5)
	sp := r.StartSpan("analysis.run_configs") // reads clock twice: start + end
	sp.End()
	h := r.Histogram("engine.tasks_per_worker")
	h.Observe(3)
	h.Observe(5)
	h.Observe(900)
	r.Put("figures", []map[string]any{
		{"figure": 9, "config": "6+6+6", "states": map[string]int{"green": 905, "red": 95}},
	})

	var buf bytes.Buffer
	if err := r.WriteReport(&buf, "compoundsim", []string{"-fig", "9"}); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "schema": "compoundthreat/run-report/v1",
  "command": "compoundsim",
  "args": [
    "-fig",
    "9"
  ],
  "started_at": "2026-01-02T03:04:05Z",
  "wall_ns": 750000000,
  "phases": [
    {
      "name": "analysis.run_configs",
      "count": 1,
      "total_ns": 250000000,
      "min_ns": 250000000,
      "max_ns": 250000000
    }
  ],
  "counters": {
    "engine.memo_hits": 995,
    "engine.memo_misses": 5
  },
  "histograms": {
    "engine.tasks_per_worker": {
      "count": 3,
      "sum": 908,
      "min": 3,
      "max": 900,
      "buckets": [
        {
          "lt": 4,
          "count": 1
        },
        {
          "lt": 8,
          "count": 1
        },
        {
          "lt": 1024,
          "count": 1
        }
      ]
    }
  },
  "results": {
    "figures": [
      {
        "config": "6+6+6",
        "figure": 9,
        "states": {
          "green": 905,
          "red": 95
        }
      }
    ]
  }
}
`
	if got := buf.String(); got != golden {
		t.Fatalf("run report drifted from golden schema.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestReportDedupBlock: a run that recorded the engine dedup counters
// gets the derived dedup block — input rows, distinct rows, their
// ratio, and the compression phase's wall time — while runs without
// them omit it (keeping schema v1, as the golden test proves).
func TestReportDedupBlock(t *testing.T) {
	clock := &fakeClock{
		t:    time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		step: time.Millisecond,
	}
	r := newRecorder(clock.now)
	r.Counter("engine.dedup_input_rows").Add(1000)
	r.Counter("engine.distinct_patterns").Add(40)
	r.StartSpan("engine.compress").End() // one clock step = 1ms
	rep := r.Report("compoundsim", nil)
	d := rep.Dedup
	if d == nil {
		t.Fatal("dedup block missing")
	}
	if d.InputRows != 1000 || d.DistinctRows != 40 {
		t.Errorf("dedup block = %+v, want 1000 input / 40 distinct", d)
	}
	if d.Ratio != 0.04 {
		t.Errorf("ratio = %v, want 0.04", d.Ratio)
	}
	if d.CompressWallNS != time.Millisecond.Nanoseconds() {
		t.Errorf("compress_wall_ns = %d, want %d", d.CompressWallNS, time.Millisecond.Nanoseconds())
	}
}

// TestReportEmptyTimer checks that a resolved-but-never-recorded timer
// reports zero min/max instead of the MaxInt64 sentinel.
func TestReportEmptyTimer(t *testing.T) {
	r := New()
	r.Timer("never")
	rep := r.Report("x", nil)
	if len(rep.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(rep.Phases))
	}
	p := rep.Phases[0]
	if p.Count != 0 || p.MinNS != 0 || p.MaxNS != 0 || p.TotalNS != 0 {
		t.Fatalf("empty timer report = %+v, want zeros", p)
	}
}

// TestWriteReportFile round-trips a report through a file.
func TestWriteReportFile(t *testing.T) {
	r := New()
	r.Counter("c").Add(7)
	path := t.TempDir() + "/report.json"
	if err := r.WriteReportFile(path, "cmd", nil); err != nil {
		t.Fatal(err)
	}
	// Parse it back through the exported Report type to prove the file
	// is valid JSON matching the schema.
	var buf bytes.Buffer
	if err := r.WriteReport(&buf, "cmd", nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"c": 7`)) {
		t.Fatalf("report missing counter: %s", buf.String())
	}
}
