package obs

// Request-scoped tracing. Where the Recorder aggregates (how long did
// all compiles take?), a Trace explains one request (where did THIS
// slow query spend its time?): a tree of named spans with parent
// links, started from a handler and threaded through the serving path
// via context.Context. Completed traces land in fixed-capacity
// lock-free ring buffers — one for everything recent, one reserved for
// traces over the tracer's slow threshold, so a burst of fast requests
// cannot evict the slow outlier an operator is hunting.
//
// The contract matches the rest of the package: a nil *Tracer, nil
// *Trace, or nil *TraceSpan is a safe no-op on every method, so
// instrumented code calls unconditionally and pays only a nil check
// when tracing is off. When tracing is on, each span costs one small
// allocation (traces are request-scoped, so the total is bounded by
// maxTraceSpans per request); ring publication is one atomic store.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// maxTraceSpans bounds the spans retained per trace, so a pathological
// request (a placement sweep spawning a span per candidate, say)
// cannot hold unbounded memory. Spans past the cap are counted and
// dropped; Report surfaces the count.
const maxTraceSpans = 512

// defaultTracer is the process-wide tracer used by instrumented code.
// It is nil (tracing disabled) until EnableTracing is called.
var defaultTracer atomic.Pointer[Tracer]

// EnableTracing installs t as the process-wide tracer;
// EnableTracing(nil) disables tracing again. As with Enable, code that
// resolves the tracer at construction time keeps the one it resolved.
func EnableTracing(t *Tracer) {
	defaultTracer.Store(t)
}

// DefaultTracer returns the process-wide tracer, or nil when tracing
// is disabled. All Tracer methods are nil-safe.
func DefaultTracer() *Tracer {
	return defaultTracer.Load()
}

// Tracer owns the completed-trace ring buffers and hands out new
// traces. Safe for concurrent use; a nil *Tracer no-ops everywhere.
type Tracer struct {
	slow time.Duration
	now  func() time.Time

	idBase uint64
	nextID atomic.Uint64

	started      atomic.Int64
	finished     atomic.Int64
	slowCount    atomic.Int64
	droppedSpans atomic.Int64

	recent traceRing
	slowly traceRing
}

// NewTracer builds a tracer retaining the last capacity completed
// traces (capacity <= 0 means 256) plus, separately, the last capacity
// traces whose total duration reached slowThreshold. A slowThreshold
// <= 0 disables the slow ring.
func NewTracer(capacity int, slowThreshold time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		slow:   slowThreshold,
		now:    time.Now,
		idBase: uint64(time.Now().UnixNano()),
		recent: newTraceRing(capacity),
		slowly: newTraceRing(capacity),
	}
}

// SlowThreshold returns the duration at or above which a finished
// trace is retained in the slow ring (0 = slow retention disabled, or
// nil tracer).
func (tr *Tracer) SlowThreshold() time.Duration {
	if tr == nil {
		return 0
	}
	return tr.slow
}

// Capacity returns the per-ring trace capacity (0 on a nil tracer).
func (tr *Tracer) Capacity() int {
	if tr == nil {
		return 0
	}
	return len(tr.recent.slots)
}

// TracerStats is a snapshot of a tracer's lifetime counters.
type TracerStats struct {
	// Started counts traces handed out by Start.
	Started int64
	// Finished counts traces that reached Finish.
	Finished int64
	// Slow counts finished traces at or over the slow threshold.
	Slow int64
	// DroppedSpans counts spans discarded because their trace was
	// already finished or at maxTraceSpans.
	DroppedSpans int64
}

// Stats returns the tracer's lifetime counters (zero on nil).
func (tr *Tracer) Stats() TracerStats {
	if tr == nil {
		return TracerStats{}
	}
	return TracerStats{
		Started:      tr.started.Load(),
		Finished:     tr.finished.Load(),
		Slow:         tr.slowCount.Load(),
		DroppedSpans: tr.droppedSpans.Load(),
	}
}

// traceID derives the next process-unique trace ID: a splitmix64-style
// mix of a per-tracer base (wall time at construction) and an atomic
// counter, so IDs are unique within a process and almost surely across
// restarts, without global locks or a random source.
func (tr *Tracer) traceID() uint64 {
	z := tr.idBase + tr.nextID.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Start begins a new trace with a root span of the same name. Returns
// nil — a valid no-op trace — on a nil tracer.
func (tr *Tracer) Start(name string) *Trace {
	if tr == nil {
		return nil
	}
	return tr.start(name, tr.traceID(), 0)
}

// StartRemote begins a trace that continues an inbound trace context:
// it adopts the caller's trace ID instead of minting one and records
// the caller's span as the remote parent, so the caller can later
// splice this trace's spans under that span (see TraceReport's
// RemoteParentSpan). Returns nil on a nil tracer.
func (tr *Tracer) StartRemote(name string, tp TraceParent) *Trace {
	if tr == nil {
		return nil
	}
	return tr.start(name, tp.TraceID, tp.SpanID)
}

func (tr *Tracer) start(name string, id, remoteParent uint64) *Trace {
	tr.started.Add(1)
	t := &Trace{tr: tr, id: id, name: name, start: tr.now(), remoteParent: remoteParent}
	t.root = &TraceSpan{t: t, id: 1, name: name, start: t.start}
	t.spans = append(t.spans, t.root)
	return t
}

// Find returns the completed trace with the given 16-hex-digit ID from
// the recent or slow ring, or nil. Linear over the rings — this backs
// the on-demand GET /v1/traces/{id} lookup, not a hot path.
func (tr *Tracer) Find(id string) *Trace {
	if tr == nil || len(id) != 16 {
		return nil
	}
	want, ok := parseHex64(id)
	if !ok {
		return nil
	}
	for _, t := range tr.recent.snapshot() {
		if t.id == want {
			return t
		}
	}
	for _, t := range tr.slowly.snapshot() {
		if t.id == want {
			return t
		}
	}
	return nil
}

// Recent returns a newest-first snapshot of the recently completed
// traces (nil on a nil tracer).
func (tr *Tracer) Recent() []*Trace {
	if tr == nil {
		return nil
	}
	return tr.recent.snapshot()
}

// Slow returns a newest-first snapshot of the retained slow traces
// (nil on a nil tracer).
func (tr *Tracer) Slow() []*Trace {
	if tr == nil {
		return nil
	}
	return tr.slowly.snapshot()
}

// Trace is one in-flight or completed request trace: a tree of spans
// linked by parent IDs, rooted at the span Start created. All methods
// are safe on a nil *Trace and safe for concurrent use (parallel
// engine workers may open spans on one trace).
type Trace struct {
	tr    *Tracer
	id    uint64
	name  string
	start time.Time
	root  *TraceSpan
	// remoteParent is the span ID of the remote caller's span when this
	// trace was started from an inbound trace context (0 = local root).
	remoteParent uint64

	mu       sync.Mutex
	spans    []*TraceSpan
	dropped  int64
	finished bool
	dur      time.Duration
}

// ID returns the 16-hex-digit trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("%016x", t.id)
}

// Name returns the trace's name ("" on nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Duration returns the trace's total duration: zero until Finish.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

// Slow reports whether the finished trace reached the tracer's slow
// threshold.
func (t *Trace) Slow() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finished && t.tr.slow > 0 && t.dur >= t.tr.slow
}

// Root returns the trace's root span (nil on a nil trace).
func (t *Trace) Root() *TraceSpan {
	if t == nil {
		return nil
	}
	return t.root
}

// newSpan appends a span under the given parent ID, enforcing the
// finished and capacity guards.
func (t *Trace) newSpan(parent int32, name string) *TraceSpan {
	if t == nil {
		return nil
	}
	now := t.tr.now()
	t.mu.Lock()
	if t.finished || len(t.spans) >= maxTraceSpans {
		if !t.finished {
			t.dropped++
		}
		t.mu.Unlock()
		t.tr.droppedSpans.Add(1)
		return nil
	}
	s := &TraceSpan{t: t, id: int32(len(t.spans)) + 1, parent: parent, name: name, start: now}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// StartSpan opens a span directly under the root. No-op (returns nil)
// on a nil or finished trace.
func (t *Trace) StartSpan(name string) *TraceSpan {
	return t.newSpan(1, name)
}

// Finish closes the trace: every still-open span is ended at the
// trace's end time, the total duration is fixed, and the trace is
// published to the tracer's recent ring (and the slow ring when it
// reached the threshold). Idempotent and nil-safe; spans opened after
// Finish are dropped.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	end := t.tr.now()
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.dur = end.Sub(t.start)
	for _, s := range t.spans {
		if !s.ended {
			s.ended = true
			s.dur = end.Sub(s.start)
		}
	}
	slow := t.tr.slow > 0 && t.dur >= t.tr.slow
	t.mu.Unlock()
	t.tr.finished.Add(1)
	t.tr.recent.push(t)
	if slow {
		t.tr.slowCount.Add(1)
		t.tr.slowly.push(t)
	}
}

// TraceSpan is one timed phase inside a trace, linked to its parent by
// ID. All methods are safe on a nil *TraceSpan.
type TraceSpan struct {
	t      *Trace
	id     int32
	parent int32 // 0 = the root span itself
	name   string
	start  time.Time

	// Guarded by t.mu.
	dur   time.Duration
	ended bool
	notes []traceNote
}

// traceNote is one key/value annotation on a span.
type traceNote struct{ key, value string }

// StartChild opens a span under this one. No-op (returns nil) on a
// nil span or a finished trace.
func (s *TraceSpan) StartChild(name string) *TraceSpan {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s.id, name)
}

// End fixes the span's duration. Idempotent; spans still open when
// their trace finishes are ended at the trace's end time.
func (s *TraceSpan) End() {
	if s == nil {
		return
	}
	end := s.t.tr.now()
	s.t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = end.Sub(s.start)
	}
	s.t.mu.Unlock()
}

// Annotate attaches a key/value note to the span (e.g. the cache
// outcome). No-op on nil or once the trace has finished.
func (s *TraceSpan) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if !s.t.finished {
		s.notes = append(s.notes, traceNote{key, value})
	}
	s.t.mu.Unlock()
}

// ---- context propagation ----

// traceCtxKey and spanCtxKey key the trace and current span in a
// context. Distinct types so a trace and its active span travel
// independently.
type (
	traceCtxKey struct{}
	spanCtxKey  struct{}
)

// ContextWithTrace returns ctx carrying the trace. A nil trace returns
// ctx unchanged (no allocation on the disabled path).
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// ContextWithSpan returns ctx carrying s as the current span. A nil
// span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *TraceSpan) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span carried by ctx, or nil —
// on which StartChild, End, and Annotate are all no-ops, so callers
// chain unconditionally: obs.SpanFromContext(ctx).StartChild("phase").
func SpanFromContext(ctx context.Context) *TraceSpan {
	s, _ := ctx.Value(spanCtxKey{}).(*TraceSpan)
	return s
}

// ---- completed-trace ring buffer ----

// traceRing is a fixed-capacity lock-free ring of completed traces:
// one atomic fetch-add claims a slot, one atomic store publishes into
// it. Writers never block; a reader snapshots newest-first.
type traceRing struct {
	slots []atomic.Pointer[Trace]
	pos   atomic.Uint64
}

func newTraceRing(capacity int) traceRing {
	return traceRing{slots: make([]atomic.Pointer[Trace], capacity)}
}

func (r *traceRing) push(t *Trace) {
	if len(r.slots) == 0 {
		return
	}
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// snapshot returns the retained traces, newest first. Concurrent
// pushes may momentarily leave a just-claimed slot holding its older
// value; the snapshot is approximate by design.
func (r *traceRing) snapshot() []*Trace {
	n := r.pos.Load()
	size := uint64(len(r.slots))
	if size == 0 {
		return nil
	}
	count := n
	if count > size {
		count = size
	}
	out := make([]*Trace, 0, count)
	for k := uint64(0); k < count; k++ {
		if t := r.slots[(n-1-k)%size].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// ---- JSON rendering ----

// TraceReport is one trace rendered for /v1/traces: header fields plus
// the span tree (children nested under their parents).
type TraceReport struct {
	TraceID      string    `json:"trace_id"`
	Name         string    `json:"name"`
	StartedAt    time.Time `json:"started_at"`
	DurationNS   int64     `json:"duration_ns"`
	Slow         bool      `json:"slow"`
	DroppedSpans int64     `json:"dropped_spans,omitempty"`
	// RemoteParentSpan is the caller-side span ID this trace continues
	// when it was started from an inbound trace context (StartRemote);
	// 0 for a locally rooted trace. The caller splices this trace's
	// spans under that span when stitching an end-to-end tree.
	RemoteParentSpan int64        `json:"remote_parent_span_id,omitempty"`
	Spans            []SpanReport `json:"spans"`
}

// SpanReport is one span in a TraceReport. StartNS is the offset from
// the trace start, so a flame view needs no absolute timestamps. ID is
// the span's 1-based position in its own trace — the value a remote
// trace's RemoteParentSpan refers to.
type SpanReport struct {
	ID         int32             `json:"span_id,omitempty"`
	Name       string            `json:"name"`
	StartNS    int64             `json:"start_ns"`
	DurationNS int64             `json:"duration_ns"`
	Notes      map[string]string `json:"notes,omitempty"`
	Children   []SpanReport      `json:"children,omitempty"`
}

// Report renders the trace with its span tree rebuilt from parent
// links. Zero-value report on nil. Safe to call concurrently with
// span recording; finished traces are immutable.
func (t *Trace) Report() TraceReport {
	if t == nil {
		return TraceReport{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rep := TraceReport{
		TraceID:          t.ID(),
		Name:             t.name,
		StartedAt:        t.start,
		DurationNS:       t.dur.Nanoseconds(),
		Slow:             t.finished && t.tr.slow > 0 && t.dur >= t.tr.slow,
		DroppedSpans:     t.dropped,
		RemoteParentSpan: int64(t.remoteParent),
	}
	// children[id] lists the span IDs whose parent is id; span IDs are
	// 1-based positions in t.spans, so the tree rebuilds in one pass.
	children := make(map[int32][]*TraceSpan, len(t.spans))
	for _, s := range t.spans[1:] {
		children[s.parent] = append(children[s.parent], s)
	}
	var render func(s *TraceSpan) SpanReport
	render = func(s *TraceSpan) SpanReport {
		sr := SpanReport{
			ID:         s.id,
			Name:       s.name,
			StartNS:    s.start.Sub(t.start).Nanoseconds(),
			DurationNS: s.dur.Nanoseconds(),
		}
		if len(s.notes) > 0 {
			sr.Notes = make(map[string]string, len(s.notes))
			for _, n := range s.notes {
				sr.Notes[n.key] = n.value
			}
		}
		for _, c := range children[s.id] {
			sr.Children = append(sr.Children, render(c))
		}
		return sr
	}
	rep.Spans = []SpanReport{render(t.spans[0])}
	return rep
}
