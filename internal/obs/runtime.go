package obs

// Runtime sampler: a background goroutine that periodically copies Go
// runtime health (goroutine count, heap bytes, GC activity) into
// gauges, so /v1/metrics and the end-of-run report show how the
// process itself is doing, not just the work it served.

import (
	"runtime"
	"sync"
	"time"
)

// StartRuntimeSampler starts a goroutine that samples runtime stats
// into r's gauges every interval:
//
//	runtime.goroutines          current goroutine count
//	runtime.heap_alloc_bytes    live heap bytes (MemStats.HeapAlloc)
//	runtime.heap_sys_bytes      heap bytes obtained from the OS
//	runtime.gc_pause_total_ns   cumulative stop-the-world pause time
//	runtime.gc_count            completed GC cycles
//
// plus a runtime.samples counter. The first sample is taken
// immediately. The returned stop function is idempotent and blocks
// until the goroutine has exited. A nil recorder or non-positive
// interval returns a no-op stop.
func StartRuntimeSampler(r *Recorder, interval time.Duration) (stop func()) {
	if r == nil || interval <= 0 {
		return func() {}
	}
	goroutines := r.Gauge("runtime.goroutines")
	heapAlloc := r.Gauge("runtime.heap_alloc_bytes")
	heapSys := r.Gauge("runtime.heap_sys_bytes")
	gcPause := r.Gauge("runtime.gc_pause_total_ns")
	gcCount := r.Gauge("runtime.gc_count")
	samples := r.Counter("runtime.samples")

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		gcPause.Set(int64(ms.PauseTotalNs))
		gcCount.Set(int64(ms.NumGC))
		samples.Inc()
	}
	sample()

	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
