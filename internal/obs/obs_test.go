package obs

import (
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// with -race to verify the implementation is data-race free.
func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("c")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramConcurrent checks count/sum/min/max and bucket totals
// under concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*perWorker + i))
			}
		}()
	}
	wg.Wait()
	n := int64(workers * perWorker)
	if got := h.Count(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	if want := n * (n - 1) / 2; h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	if h.min.Load() != 0 || h.max.Load() != n-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", h.min.Load(), h.max.Load(), n-1)
	}
	var bucketTotal int64
	for i := range h.buckets {
		bucketTotal += h.buckets[i].Load()
	}
	if bucketTotal != n {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, n)
	}
}

// TestTimerConcurrent records from many goroutines and checks the
// aggregate invariants.
func TestTimerConcurrent(t *testing.T) {
	r := New()
	tm := r.Timer("t")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tm.Record(time.Duration(i+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := tm.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	if tm.min.Load() != int64(time.Microsecond) {
		t.Fatalf("min = %d, want %d", tm.min.Load(), int64(time.Microsecond))
	}
	if tm.max.Load() != int64(perWorker*time.Microsecond) {
		t.Fatalf("max = %d, want %d", tm.max.Load(), int64(perWorker*time.Microsecond))
	}
	if want := int64(workers) * int64(perWorker) * int64(perWorker+1) / 2 * int64(time.Microsecond); tm.total.Load() != want {
		t.Fatalf("total = %d, want %d", tm.total.Load(), want)
	}
}

// TestNilSafety exercises every instrument method on nil receivers and
// the zero Span; none may panic, and reads return zeros.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Counter("c").Add(3)
	r.Counter("c").Inc()
	r.Timer("t").Record(time.Second)
	r.Histogram("h").Observe(42)
	r.Put("k", "v")
	r.StartSpan("s").End()
	Span{}.End()
	if r.Counter("c").Value() != 0 || r.Timer("t").Count() != 0 || r.Histogram("h").Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	rep := r.Report("cmd", nil)
	if rep.Schema != ReportSchema {
		t.Fatalf("nil recorder report schema = %q", rep.Schema)
	}
}

// TestDefaultEnableDisable checks the process-wide recorder switch.
func TestDefaultEnableDisable(t *testing.T) {
	if Default() != nil {
		t.Fatal("default recorder must start disabled")
	}
	r := New()
	Enable(r)
	defer Enable(nil)
	if Default() != r {
		t.Fatal("Enable did not install the recorder")
	}
	Default().Counter("x").Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("default recorder did not record")
	}
}

// TestBucketIndex pins the histogram bucket layout.
func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 40, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestNoopZeroAlloc proves the disabled instrumentation path performs
// no allocations: the whole point of the nil-recorder design.
func TestNoopZeroAlloc(t *testing.T) {
	var r *Recorder
	c := r.Counter("c")
	h := r.Histogram("h")
	tm := r.Timer("t")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(7)
		tm.Record(time.Millisecond)
		r.StartSpan("phase").End()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %v times per run", allocs)
	}
}

// TestEnabledRecordingZeroAlloc proves the recording paths stay
// allocation-free when observability is on, once instruments are
// resolved.
func TestEnabledRecordingZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	tm := r.Timer("t")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(7)
		tm.Record(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("enabled recording allocated %v times per run", allocs)
	}
}
