package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tp := TraceParent{TraceID: 0x0123456789abcdef, SpanID: 0x00000000000000a7, Sampled: true}
	s := tp.String()
	want := "00-00000000000000000123456789abcdef-00000000000000a7-01"
	if s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
	got, err := ParseTraceParent(s)
	if err != nil {
		t.Fatalf("ParseTraceParent(%q): %v", s, err)
	}
	if got != tp {
		t.Fatalf("round trip: got %+v, want %+v", got, tp)
	}

	unsampled := TraceParent{TraceID: 1, SpanID: 2}
	got, err = ParseTraceParent(unsampled.String())
	if err != nil {
		t.Fatalf("unsampled round trip: %v", err)
	}
	if got.Sampled {
		t.Fatal("unsampled header parsed as sampled")
	}
}

func TestTraceParentParseWideTraceID(t *testing.T) {
	// A full-width 128-bit trace ID from a foreign tracer keeps its low
	// 64 bits.
	got, err := ParseTraceParent("00-deadbeefdeadbeef0123456789abcdef-000000000000000f-01")
	if err != nil {
		t.Fatalf("wide trace id: %v", err)
	}
	if got.TraceID != 0x0123456789abcdef || got.SpanID != 0xf {
		t.Fatalf("wide trace id parsed as %+v", got)
	}
}

func TestTraceParentParseErrors(t *testing.T) {
	valid := "00-00000000000000000123456789abcdef-00000000000000a7-01"
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"empty", "", ErrTraceParentLength},
		{"short", valid[:54], ErrTraceParentLength},
		{"long", valid + "0", ErrTraceParentLength},
		{"bad version", "01" + valid[2:], ErrTraceParentVersion},
		{"version ff", "ff" + valid[2:], ErrTraceParentVersion},
		{"version not hex", "zz" + valid[2:], ErrTraceParentSyntax},
		{"missing dash", strings.Replace(valid, "-", "_", 1), ErrTraceParentSyntax},
		{"uppercase hex", strings.Replace(valid, "a", "A", 1), ErrTraceParentSyntax},
		{"non-hex trace id", "00-g" + valid[4:], ErrTraceParentSyntax},
		{"non-hex flags", valid[:53] + "0g", ErrTraceParentSyntax},
		{"zero trace id", "00-00000000000000000000000000000000-00000000000000a7-01", ErrTraceParentZero},
		{"zero span id", "00-00000000000000000123456789abcdef-0000000000000000-01", ErrTraceParentZero},
	}
	for _, tc := range cases {
		if _, err := ParseTraceParent(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: ParseTraceParent(%q) err = %v, want %v", tc.name, tc.in, err, tc.want)
		}
	}
}

// FuzzTraceParent checks the parser's invariants against arbitrary
// input: it never panics, accepts only exact-length lowercase-hex
// headers, and everything it accepts re-renders to a header it accepts
// again with the same decoded fields.
func FuzzTraceParent(f *testing.F) {
	f.Add("00-00000000000000000123456789abcdef-00000000000000a7-01")
	f.Add("00-deadbeefdeadbeefdeadbeefdeadbeef-cafef00dcafef00d-00")
	f.Add("")
	f.Add("ff-00000000000000000000000000000000-0000000000000000-00")
	f.Add(strings.Repeat("0", 55))
	f.Fuzz(func(t *testing.T, s string) {
		tp, err := ParseTraceParent(s)
		if err != nil {
			if tp != (TraceParent{}) {
				t.Fatalf("rejected input %q returned non-zero value %+v", s, tp)
			}
			return
		}
		if len(s) != 55 {
			t.Fatalf("accepted %d-byte input %q", len(s), s)
		}
		if tp.TraceID == 0 || tp.SpanID == 0 {
			t.Fatalf("accepted zero identity from %q: %+v", s, tp)
		}
		again, err := ParseTraceParent(tp.String())
		if err != nil {
			t.Fatalf("re-render of %q (%+v) does not parse: %v", s, tp, err)
		}
		// The high 64 bits of a foreign trace ID are dropped on render,
		// so compare decoded fields, not strings.
		if again != tp {
			t.Fatalf("round trip changed %+v to %+v", tp, again)
		}
	})
}

func TestStartRemoteAdoptsTraceContext(t *testing.T) {
	tr, clk := newTestTracer(4, 0)
	tp := TraceParent{TraceID: 0xfeedface12345678, SpanID: 7, Sampled: true}
	trace := tr.StartRemote("sweep", tp)
	if trace.ID() != "feedface12345678" {
		t.Fatalf("remote trace ID = %q, want feedface12345678", trace.ID())
	}
	sp := trace.StartSpan("evaluate")
	clk.Advance(time.Millisecond)
	sp.End()
	trace.Finish()

	rep := trace.Report()
	if rep.RemoteParentSpan != 7 {
		t.Fatalf("RemoteParentSpan = %d, want 7", rep.RemoteParentSpan)
	}
	if rep.TraceID != "feedface12345678" {
		t.Fatalf("report trace ID = %q", rep.TraceID)
	}
	if len(rep.Spans) != 1 || rep.Spans[0].ID != 1 {
		t.Fatalf("root span ID = %+v, want 1", rep.Spans)
	}
	if len(rep.Spans[0].Children) != 1 || rep.Spans[0].Children[0].ID != 2 {
		t.Fatalf("child span IDs = %+v", rep.Spans[0].Children)
	}

	// A locally rooted trace reports no remote parent.
	local := tr.Start("local")
	local.Finish()
	if got := local.Report().RemoteParentSpan; got != 0 {
		t.Fatalf("local trace RemoteParentSpan = %d, want 0", got)
	}
}

func TestTracerFind(t *testing.T) {
	tr, _ := newTestTracer(4, 50*time.Millisecond)
	trace := tr.Start("sweep")
	id := trace.ID()
	if tr.Find(id) != nil {
		t.Fatal("Find returned an unfinished trace")
	}
	trace.Finish()
	if got := tr.Find(id); got != trace {
		t.Fatalf("Find(%q) = %v, want the finished trace", id, got)
	}
	if tr.Find("000000000000000z") != nil {
		t.Fatal("Find accepted a non-hex ID")
	}
	if tr.Find("abc") != nil {
		t.Fatal("Find accepted a short ID")
	}
	var nilTr *Tracer
	if nilTr.Find(id) != nil {
		t.Fatal("nil tracer Find != nil")
	}

	// Eviction: push capacity+1 more traces; the first must age out of
	// the recent ring.
	for i := 0; i < 5; i++ {
		tr.Start("filler").Finish()
	}
	if tr.Find(id) != nil {
		t.Fatal("Find returned a trace evicted from the recent ring")
	}
}

func TestTraceParentZeroAllocDisabled(t *testing.T) {
	// The full propagation path with tracing off: parse the inbound
	// header, consult the (nil) tracer, thread contexts, render the
	// outbound header. None of it may allocate.
	var tr *Tracer
	ctx := t.Context()
	header := "00-00000000000000000123456789abcdef-00000000000000a7-01"
	allocs := testing.AllocsPerRun(100, func() {
		tp, err := ParseTraceParent(header)
		if err != nil {
			t.Fatal(err)
		}
		trace := tr.StartRemote("sweep", tp)
		c := ContextWithSpan(ContextWithTrace(ctx, trace), trace.Root())
		sp := SpanFromContext(c).StartChild("fetch")
		if out := TraceFromContext(c).TraceParent(sp); out != "" {
			t.Fatalf("nil trace rendered traceparent %q", out)
		}
		sp.End()
		trace.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled propagation path allocates %.1f times per request, want 0", allocs)
	}
}

func BenchmarkObsTraceParentParse(b *testing.B) {
	header := "00-00000000000000000123456789abcdef-00000000000000a7-01"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTraceParent(header); err != nil {
			b.Fatal(err)
		}
	}
}
