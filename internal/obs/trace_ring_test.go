package obs

import (
	"sync"
	"testing"
)

// TestTraceRingConcurrent hammers one ring with concurrent pushers and
// snapshotters: no data race (the race detector covers this test), no
// nil or foreign entries in any snapshot, and after the dust settles
// the ring holds exactly the newest capacity traces.
func TestTraceRingConcurrent(t *testing.T) {
	tr, _ := newTestTracer(8, 0)
	ring := newTraceRing(8)
	const (
		writers   = 8
		perWriter = 500
	)
	traces := make([]*Trace, writers*perWriter)
	valid := make(map[*Trace]bool, len(traces))
	for i := range traces {
		traces[i] = tr.Start("t")
		valid[traces[i]] = true
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := ring.snapshot()
				if len(snap) > 8 {
					t.Errorf("snapshot holds %d traces, capacity is 8", len(snap))
					return
				}
				for _, got := range snap {
					if got == nil || !valid[got] {
						t.Errorf("snapshot returned unknown trace %p", got)
						return
					}
				}
			}
		}()
	}
	var pushers sync.WaitGroup
	for w := 0; w < writers; w++ {
		pushers.Add(1)
		go func(w int) {
			defer pushers.Done()
			for i := 0; i < perWriter; i++ {
				ring.push(traces[w*perWriter+i])
			}
		}(w)
	}
	pushers.Wait()
	close(stop)
	wg.Wait()

	snap := ring.snapshot()
	if len(snap) != 8 {
		t.Fatalf("final snapshot holds %d traces, want 8", len(snap))
	}
	seen := map[*Trace]bool{}
	for _, got := range snap {
		if !valid[got] {
			t.Fatalf("final snapshot holds unknown trace %p", got)
		}
		if seen[got] {
			t.Fatalf("final snapshot repeats trace %p", got)
		}
		seen[got] = true
	}
}

// TestTraceRingZeroCapacity pins the degenerate ring: push is a no-op
// and snapshot is empty, so a zero-capacity tracer cannot panic.
func TestTraceRingZeroCapacity(t *testing.T) {
	ring := newTraceRing(0)
	ring.push(&Trace{})
	if got := ring.snapshot(); got != nil {
		t.Fatalf("zero-capacity snapshot = %v, want nil", got)
	}
}
