package obs

// Prometheus text exposition: WritePrometheus renders every instrument
// a Recorder holds in the Prometheus text format (version 0.0.4), so a
// live server exposes the same counters the JSON run report snapshots
// — scrapeable at an interval instead of read once at exit.
//
// Mapping (instrument names are sanitized to [a-zA-Z0-9_]):
//
//   - Counter  c → c_total (TYPE counter)
//   - Gauge    g → g and g_high (TYPE gauge; level + high-water mark)
//   - Timer    t → t_ns summary (t_ns_sum, t_ns_count) plus t_ns_min /
//     t_ns_max gauges (timers record nanoseconds)
//   - Histogram h → h histogram: cumulative h_bucket{le="2^i"} for the
//     power-of-two buckets, h_bucket{le="+Inf"}, h_sum, h_count. The
//     last internal bucket absorbs arbitrarily large observations, so
//     it renders only into +Inf.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the recorder's instruments in Prometheus
// text format, metric families sorted by name. On a nil recorder it
// writes a single comment line, so a scrape of a server with
// observability disabled is still valid exposition.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r == nil {
		fmt.Fprintf(bw, "# observability disabled (no recorder enabled)\n")
		return bw.Flush()
	}
	// Snapshot the instrument maps under the lock; the instruments
	// themselves are read lock-free (they are atomics).
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	timers := make(map[string]*Timer, len(r.timers))
	for n, t := range r.timers {
		timers[n] = t
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		pn := promName(name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		g := gauges[name]
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", pn, pn, g.Value())
		fmt.Fprintf(bw, "# TYPE %s_high gauge\n%s_high %d\n", pn, pn, g.High())
	}
	for _, name := range sortedKeys(timers) {
		t := timers[name]
		pn := promName(name) + "_ns"
		fmt.Fprintf(bw, "# TYPE %s summary\n", pn)
		fmt.Fprintf(bw, "%s_sum %d\n%s_count %d\n", pn, t.Total().Nanoseconds(), pn, t.Count())
		fmt.Fprintf(bw, "# TYPE %s_min gauge\n%s_min %d\n", pn, pn, t.Min().Nanoseconds())
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n%s_max %d\n", pn, pn, t.Max().Nanoseconds())
	}
	for _, name := range sortedKeys(hists) {
		writePromHistogram(bw, promName(name), hists[name])
	}
	return bw.Flush()
}

// writePromHistogram renders one histogram family with cumulative le
// buckets. Power-of-two bucket i holds v with bits.Len64(v) == i, i.e.
// v < 2^i, so the cumulative count through bucket i is exact at
// le="2^i"; bucket 0 (non-positive observations) renders at le="0".
// Only buckets that change the cumulative count are emitted — sparse
// bucket lists are valid exposition.
func writePromHistogram(w io.Writer, pn string, h *Histogram) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	var cum int64
	for i := 0; i < histBuckets-1; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		if i == 0 {
			fmt.Fprintf(w, "%s_bucket{le=\"0\"} %d\n", pn, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, int64(1)<<uint(i), cum)
		}
	}
	// The last internal bucket has no finite upper bound; it (and any
	// racing concurrent observations) folds into +Inf via Count.
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count())
	fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum(), pn, h.Count())
}

// promName sanitizes an instrument name ("serve.latency_ns.sweep")
// into a Prometheus metric name ("serve_latency_ns_sweep"): every rune
// outside [a-zA-Z0-9_] becomes '_', and a leading digit is prefixed.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
