package obs

// W3C-style traceparent propagation. The router injects a traceparent
// header on every proxied call and workers adopt it, so one trace ID
// covers the whole routed request. The format is the W3C Trace Context
// header layout:
//
//	00-0123456789abcdef0123456789abcdef-0123456789abcdef-01
//	^^ ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^ ^^^^^^^^^^^^^^^^ ^^
//	version    trace-id (32 hex)        parent-id (16h)  flags
//
// This package's trace IDs are 64-bit, so the emitted trace-id field is
// the ID zero-padded to 128 bits; inbound IDs keep their low 64 bits
// (the high bits must be hex but are otherwise ignored, so headers from
// full-width tracers still parse). Parsing is strict — exact length,
// lowercase hex only, version 00, non-zero IDs — and allocation-free,
// so a hostile or garbled header costs a rejection, never a bad trace.

import "errors"

// Typed traceparent parse errors, one per validation stage, so callers
// (and the fuzz target) can assert exactly why a header was rejected.
var (
	// ErrTraceParentLength rejects headers that are not exactly 55 bytes.
	ErrTraceParentLength = errors.New("traceparent: not 55 bytes")
	// ErrTraceParentVersion rejects versions other than 00 (ff is
	// explicitly forbidden by the spec; anything else is unknown).
	ErrTraceParentVersion = errors.New("traceparent: unsupported version")
	// ErrTraceParentSyntax rejects misplaced separators or non-hex
	// digits (uppercase hex is invalid per the spec).
	ErrTraceParentSyntax = errors.New("traceparent: malformed field")
	// ErrTraceParentZero rejects the all-zero trace ID or parent span ID,
	// both of which the spec defines as invalid.
	ErrTraceParentZero = errors.New("traceparent: zero trace or parent id")
)

// TraceParent is a parsed traceparent header: the (low 64 bits of the)
// trace ID, the parent span ID, and the sampled flag.
type TraceParent struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

const traceParentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// ParseTraceParent strictly parses a traceparent header value. It
// returns one of the ErrTraceParent* sentinel errors on rejection and
// never allocates, so calling it on every request is free.
func ParseTraceParent(s string) (TraceParent, error) {
	var tp TraceParent
	if len(s) != traceParentLen {
		return tp, ErrTraceParentLength
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tp, ErrTraceParentSyntax
	}
	if s[0] != '0' || s[1] != '0' {
		if !hexOK(s[0]) || !hexOK(s[1]) {
			return tp, ErrTraceParentSyntax
		}
		return tp, ErrTraceParentVersion
	}
	// The high 64 trace-ID bits must be hex but are otherwise ignored.
	if _, ok := parseHex64(s[3:19]); !ok {
		return tp, ErrTraceParentSyntax
	}
	lo, ok := parseHex64(s[19:35])
	if !ok {
		return tp, ErrTraceParentSyntax
	}
	span, ok := parseHex64(s[36:52])
	if !ok {
		return tp, ErrTraceParentSyntax
	}
	flags, ok := parseHex64(s[53:55])
	if !ok {
		return tp, ErrTraceParentSyntax
	}
	if lo == 0 || span == 0 {
		// The spec forbids the all-zero trace and parent IDs; this
		// package additionally keeps only the low 64 trace-ID bits, so a
		// zero low half is equally unusable as an identity.
		return tp, ErrTraceParentZero
	}
	tp.TraceID = lo
	tp.SpanID = span
	tp.Sampled = flags&0x01 != 0
	return tp, nil
}

// String renders the header value (version 00, trace ID zero-padded to
// 128 bits, sampled flag from the struct).
func (tp TraceParent) String() string {
	var buf [traceParentLen]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	for i := 3; i < 19; i++ {
		buf[i] = '0'
	}
	putHex64(buf[19:35], tp.TraceID)
	buf[35] = '-'
	putHex64(buf[36:52], tp.SpanID)
	buf[52] = '-'
	buf[53] = '0'
	if tp.Sampled {
		buf[54] = '1'
	} else {
		buf[54] = '0'
	}
	return string(buf[:])
}

// TraceParent renders the outbound header value for a proxied call made
// under span s (nil s means the root span), so the callee's trace
// adopts this trace's ID with s as the remote parent. Returns "" on a
// nil trace — the disabled path injects nothing and allocates nothing.
func (t *Trace) TraceParent(s *TraceSpan) string {
	if t == nil {
		return ""
	}
	if s == nil {
		s = t.root
	}
	return TraceParent{TraceID: t.id, SpanID: uint64(s.id), Sampled: true}.String()
}

const hexDigits = "0123456789abcdef"

func putHex64(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// parseHex64 parses up to 16 lowercase hex digits. Uppercase is a
// syntax error, matching the spec's lowercase-only requirement.
func parseHex64(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

func hexOK(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
}
