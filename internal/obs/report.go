package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// ReportSchema identifies the run-report JSON layout. Bump the suffix
// on incompatible changes; the golden test pins the current layout.
const ReportSchema = "compoundthreat/run-report/v1"

// Report is the machine-readable snapshot of a recorder: per-phase
// wall times, counters, histograms, and any structured results the run
// attached (e.g. per-figure state tallies).
type Report struct {
	Schema    string                `json:"schema"`
	Command   string                `json:"command,omitempty"`
	Args      []string              `json:"args,omitempty"`
	StartedAt time.Time             `json:"started_at"`
	WallNS    int64                 `json:"wall_ns"`
	Phases    []PhaseReport         `json:"phases"`
	Counters  map[string]int64      `json:"counters"`
	Histogram map[string]HistReport `json:"histograms"`
	// Gauges is present only when the run resolved at least one gauge,
	// so runs without gauges keep rendering the exact v1 layout.
	Gauges  map[string]GaugeReport `json:"gauges,omitempty"`
	Dedup   *DedupReport           `json:"dedup,omitempty"`
	Results map[string]any         `json:"results,omitempty"`
}

// GaugeReport is one gauge rendered for the report: the level at
// snapshot time and the high-water mark over the run.
type GaugeReport struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// DedupReport summarizes failure-matrix row deduplication for the
// run: how many realization rows went in, how many distinct patterns
// came out, their ratio (distinct/input; 1.0 = incompressible), and
// the wall time spent compressing. Present only when the run
// compressed at least one matrix (the engine.dedup_* counters were
// recorded). The underlying counters also appear verbatim in
// Counters; this block is the derived, human-oriented view.
type DedupReport struct {
	InputRows      int64   `json:"input_rows"`
	DistinctRows   int64   `json:"distinct_rows"`
	Ratio          float64 `json:"ratio"`
	CompressWallNS int64   `json:"compress_wall_ns"`
}

// PhaseReport is one timer rendered for the report.
type PhaseReport struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MinNS   int64  `json:"min_ns"`
	MaxNS   int64  `json:"max_ns"`
}

// HistReport is one histogram rendered for the report. Buckets lists
// only non-empty buckets.
type HistReport struct {
	Count   int64          `json:"count"`
	Sum     int64          `json:"sum"`
	Min     int64          `json:"min"`
	Max     int64          `json:"max"`
	Buckets []BucketReport `json:"buckets,omitempty"`
}

// BucketReport counts observations in [Lt/2, Lt) — power-of-two
// bounds — except the first bucket (Lt 1), which counts non-positive
// observations.
type BucketReport struct {
	Lt    int64 `json:"lt"`
	Count int64 `json:"count"`
}

// Report snapshots the recorder. Command and args annotate the run
// they came from. Safe to call while instruments are still recording;
// the snapshot is then merely approximate. Returns an empty skeleton
// report on a nil recorder.
func (r *Recorder) Report(command string, args []string) Report {
	rep := Report{
		Schema:    ReportSchema,
		Command:   command,
		Args:      args,
		Phases:    []PhaseReport{},
		Counters:  map[string]int64{},
		Histogram: map[string]HistReport{},
	}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rep.StartedAt = r.start
	rep.WallNS = r.now().Sub(r.start).Nanoseconds()
	for name, t := range r.timers {
		p := PhaseReport{
			Name:    name,
			Count:   t.count.Load(),
			TotalNS: t.total.Load(),
			MinNS:   t.min.Load(),
			MaxNS:   t.max.Load(),
		}
		if p.Count == 0 {
			p.MinNS, p.MaxNS = 0, 0
		}
		rep.Phases = append(rep.Phases, p)
	}
	sort.Slice(rep.Phases, func(i, j int) bool { return rep.Phases[i].Name < rep.Phases[j].Name })
	for name, c := range r.counters {
		rep.Counters[name] = c.n.Load()
	}
	if len(r.gauges) > 0 {
		rep.Gauges = make(map[string]GaugeReport, len(r.gauges))
		for name, g := range r.gauges {
			rep.Gauges[name] = GaugeReport{Value: g.Value(), High: g.High()}
		}
	}
	for name, h := range r.hists {
		hr := HistReport{
			Count: h.count.Load(),
			Sum:   h.sum.Load(),
			Min:   h.min.Load(),
			Max:   h.max.Load(),
		}
		if hr.Count == 0 {
			hr.Min, hr.Max = 0, 0
		}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hr.Buckets = append(hr.Buckets, BucketReport{Lt: int64(1) << uint(i), Count: n})
			}
		}
		rep.Histogram[name] = hr
	}
	if in := rep.Counters["engine.dedup_input_rows"]; in > 0 {
		d := &DedupReport{
			InputRows:    in,
			DistinctRows: rep.Counters["engine.distinct_patterns"],
			Ratio:        float64(rep.Counters["engine.distinct_patterns"]) / float64(in),
		}
		for _, p := range rep.Phases {
			if p.Name == "engine.compress" {
				d.CompressWallNS = p.TotalNS
			}
		}
		rep.Dedup = d
	}
	if len(r.results) > 0 {
		rep.Results = make(map[string]any, len(r.results))
		for k, v := range r.results {
			rep.Results[k] = v
		}
	}
	return rep
}

// WriteReport renders the report as indented JSON.
func (r *Recorder) WriteReport(w io.Writer, command string, args []string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Report(command, args))
}

// WriteReportFile writes the report to path, creating or truncating
// the file.
func (r *Recorder) WriteReportFile(path, command string, args []string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteReport(f, command, args); err != nil {
		f.Close()
		return fmt.Errorf("obs: write report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}
