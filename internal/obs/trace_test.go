package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// manualClock is a manually advanced clock for deterministic trace
// durations (unlike report_test's fakeClock, which auto-advances per
// reading).
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Unix(1700000000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTracer(capacity int, slow time.Duration) (*Tracer, *manualClock) {
	tr := NewTracer(capacity, slow)
	clk := newManualClock()
	tr.now = clk.Now
	return tr, clk
}

// TestTraceSpanTree builds a small trace and checks the report rebuilds
// the span tree — names, nesting, offsets, durations, notes — from the
// flat parent-linked span list.
func TestTraceSpanTree(t *testing.T) {
	tr, clk := newTestTracer(4, 0)
	trace := tr.Start("sweep")

	clk.Advance(10 * time.Millisecond)
	validate := trace.StartSpan("validate")
	clk.Advance(5 * time.Millisecond)
	validate.End()

	cache := trace.StartSpan("cache")
	cache.Annotate("cache", "miss")
	compile := cache.StartChild("compile")
	clk.Advance(30 * time.Millisecond)
	compile.End()
	cache.End()

	eval := trace.StartSpan("evaluate")
	clk.Advance(50 * time.Millisecond)
	eval.End()
	trace.Finish()

	if got := trace.Duration(); got != 95*time.Millisecond {
		t.Fatalf("trace duration = %v, want 95ms", got)
	}
	rep := trace.Report()
	if rep.Name != "sweep" || len(rep.Spans) != 1 {
		t.Fatalf("report = %+v, want one root span named sweep", rep)
	}
	root := rep.Spans[0]
	if root.Name != "sweep" || root.DurationNS != (95*time.Millisecond).Nanoseconds() {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root children = %d, want 3 (validate, cache, evaluate)", len(root.Children))
	}
	v, c, e := root.Children[0], root.Children[1], root.Children[2]
	if v.Name != "validate" || v.StartNS != (10*time.Millisecond).Nanoseconds() || v.DurationNS != (5*time.Millisecond).Nanoseconds() {
		t.Fatalf("validate span = %+v", v)
	}
	if c.Name != "cache" || c.Notes["cache"] != "miss" || len(c.Children) != 1 {
		t.Fatalf("cache span = %+v", c)
	}
	if c.Children[0].Name != "compile" || c.Children[0].DurationNS != (30*time.Millisecond).Nanoseconds() {
		t.Fatalf("compile span = %+v", c.Children[0])
	}
	if e.Name != "evaluate" || e.DurationNS != (50*time.Millisecond).Nanoseconds() {
		t.Fatalf("evaluate span = %+v", e)
	}
}

// TestTraceIDs checks IDs are 16 hex digits and process-unique.
func TestTraceIDs(t *testing.T) {
	tr, _ := newTestTracer(4, 0)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := tr.Start("t").ID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q is not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

// TestTraceRingRetention fills the recent ring past capacity and
// checks the newest-first snapshot; slow traces must survive in the
// slow ring even after the recent ring cycles.
func TestTraceRingRetention(t *testing.T) {
	tr, clk := newTestTracer(3, 100*time.Millisecond)

	slow := tr.Start("slow-query")
	clk.Advance(200 * time.Millisecond)
	slow.Finish()
	if !slow.Slow() {
		t.Fatal("200ms trace over a 100ms threshold must be slow")
	}

	for i := 0; i < 5; i++ {
		fast := tr.Start(fmt.Sprintf("fast-%d", i))
		clk.Advance(time.Millisecond)
		fast.Finish()
	}

	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent ring holds %d traces, want capacity 3", len(recent))
	}
	for i, want := range []string{"fast-4", "fast-3", "fast-2"} {
		if recent[i].Name() != want {
			t.Fatalf("recent[%d] = %q, want %q (newest first)", i, recent[i].Name(), want)
		}
	}
	slowTraces := tr.Slow()
	if len(slowTraces) != 1 || slowTraces[0].Name() != "slow-query" {
		t.Fatalf("slow ring = %v, want the one slow trace", slowTraces)
	}

	st := tr.Stats()
	if st.Started != 6 || st.Finished != 6 || st.Slow != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTraceSlowDisabled checks a non-positive threshold keeps the slow
// ring empty.
func TestTraceSlowDisabled(t *testing.T) {
	tr, clk := newTestTracer(2, 0)
	trace := tr.Start("x")
	clk.Advance(time.Hour)
	trace.Finish()
	if trace.Slow() || len(tr.Slow()) != 0 {
		t.Fatal("slow retention must be off when threshold <= 0")
	}
}

// TestTraceFinishIdempotent finishes twice and opens spans after
// finish: the duration must not change and late spans are dropped and
// counted.
func TestTraceFinishIdempotent(t *testing.T) {
	tr, clk := newTestTracer(4, 0)
	trace := tr.Start("x")
	open := trace.StartSpan("left-open")
	clk.Advance(time.Millisecond)
	trace.Finish()
	clk.Advance(time.Hour)
	trace.Finish()
	if got := trace.Duration(); got != time.Millisecond {
		t.Fatalf("second Finish changed duration to %v", got)
	}
	rep := trace.Report()
	if d := rep.Spans[0].Children[0].DurationNS; d != time.Millisecond.Nanoseconds() {
		t.Fatalf("open span not closed at trace end: %dns", d)
	}
	_ = open

	if s := trace.StartSpan("late"); s != nil {
		t.Fatal("span opened after Finish must be nil")
	}
	if st := tr.Stats(); st.DroppedSpans != 1 {
		t.Fatalf("dropped spans = %d, want 1", st.DroppedSpans)
	}
	if got := len(tr.Recent()); got != 1 {
		t.Fatalf("recent ring holds %d, want 1 (no double publication)", got)
	}
}

// TestTraceSpanCap opens more spans than maxTraceSpans and checks the
// excess is dropped, counted, and surfaced in the report.
func TestTraceSpanCap(t *testing.T) {
	tr, _ := newTestTracer(2, 0)
	trace := tr.Start("big")
	for i := 0; i < maxTraceSpans+10; i++ {
		trace.StartSpan("s").End()
	}
	trace.Finish()
	rep := trace.Report()
	if rep.DroppedSpans != 11 { // the root takes one slot, so 511 fit and 11 drop
		t.Fatalf("dropped = %d, want 11", rep.DroppedSpans)
	}
	if got := tr.Stats().DroppedSpans; got != 11 {
		t.Fatalf("tracer dropped = %d, want 11", got)
	}
}

// TestTraceNilSafety drives every Tracer/Trace/TraceSpan method
// through nil receivers; nothing may panic and reads return zeros.
func TestTraceNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Start("x") != nil || tr.Recent() != nil || tr.Slow() != nil {
		t.Fatal("nil tracer must hand out nils")
	}
	if tr.Capacity() != 0 || tr.SlowThreshold() != 0 || (tr.Stats() != TracerStats{}) {
		t.Fatal("nil tracer reads must be zero")
	}

	var trace *Trace
	trace.Finish()
	if trace.StartSpan("s") != nil || trace.ID() != "" || trace.Name() != "" ||
		trace.Duration() != 0 || trace.Slow() || trace.Root() != nil {
		t.Fatal("nil trace must no-op")
	}
	if rep := trace.Report(); rep.TraceID != "" || rep.Spans != nil {
		t.Fatalf("nil trace report = %+v", rep)
	}

	var span *TraceSpan
	span.End()
	span.Annotate("k", "v")
	if span.StartChild("c") != nil {
		t.Fatal("nil span StartChild must be nil")
	}

	// Context round-trips: nil values leave the context untouched.
	ctx := context.Background()
	if ContextWithTrace(ctx, nil) != ctx || ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("nil trace/span must not wrap the context")
	}
	if TraceFromContext(ctx) != nil || SpanFromContext(ctx) != nil {
		t.Fatal("empty context must yield nils")
	}
	// The canonical call chain when tracing is off must be safe.
	SpanFromContext(ctx).StartChild("phase").End()
}

// TestTraceContextPropagation checks a trace and span travel through a
// context independently.
func TestTraceContextPropagation(t *testing.T) {
	tr, _ := newTestTracer(2, 0)
	trace := tr.Start("req")
	span := trace.StartSpan("phase")
	ctx := ContextWithSpan(ContextWithTrace(context.Background(), trace), span)
	if TraceFromContext(ctx) != trace {
		t.Fatal("trace did not round-trip")
	}
	if SpanFromContext(ctx) != span {
		t.Fatal("span did not round-trip")
	}
	child := SpanFromContext(ctx).StartChild("inner")
	if child == nil {
		t.Fatal("child span via context is nil")
	}
	child.End()
	span.End()
	trace.Finish()
	rep := trace.Report()
	if rep.Spans[0].Children[0].Children[0].Name != "inner" {
		t.Fatalf("inner span not nested under phase: %+v", rep.Spans[0])
	}
}

// TestTraceDisabledZeroAlloc proves the disabled tracing path — the
// exact call shapes instrumented code uses — allocates nothing.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		trace := tr.Start("req")
		c := ContextWithTrace(ctx, trace)
		s := SpanFromContext(c).StartChild("phase")
		s.Annotate("k", "v")
		s.End()
		trace.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v times per run", allocs)
	}
}

// TestTraceConcurrent hammers one trace from many goroutines (parallel
// engine workers share the request trace) while a reader snapshots the
// rings; run with -race.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTracer(8, time.Nanosecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				trace := tr.Start("req")
				s := trace.StartSpan("phase")
				s.StartChild("inner").End()
				s.Annotate("i", "x")
				s.End()
				trace.Finish()
				trace.Report()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, tc := range tr.Recent() {
				tc.Report()
			}
			tr.Slow()
			tr.Stats()
		}
	}()
	wg.Wait()
	if st := tr.Stats(); st.Started != 800 || st.Finished != 800 {
		t.Fatalf("stats = %+v, want 800 started/finished", st)
	}
}
