package primarybackup

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"compoundthreat/internal/des"
	"compoundthreat/internal/netsim"
)

type harness struct {
	sim *des.Sim
	nw  *netsim.Network
	eng *Engine
}

// spec22 is the "2-2" layout: primary + hot standby in site 0, two
// cold backups in site 1.
func spec22() Spec {
	return Spec{
		Masters: []MasterSpec{
			{Role: Primary, Site: 0},
			{Role: HotStandby, Site: 0},
			{Role: ColdBackup, Site: 1},
			{Role: ColdBackup, Site: 1},
		},
		HeartbeatInterval: 50 * time.Millisecond,
		TakeoverTimeout:   200 * time.Millisecond,
		ActivationDelay:   5 * time.Second,
	}
}

// spec2 is the "2" layout: primary + hot standby in one site.
func spec2() Spec {
	s := spec22()
	s.Masters = s.Masters[:2]
	return s
}

func newHarness(t *testing.T, spec Spec) *harness {
	t.Helper()
	sim := des.New(5)
	nw, err := netsim.New(sim, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nw, spec)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	return &harness{sim: sim, nw: nw, eng: eng}
}

func proposeEvery(h *harness, n int, gap time.Duration) []string {
	payloads := make([]string, n)
	for i := range payloads {
		payloads[i] = fmt.Sprintf("cmd-%03d", i)
		p := payloads[i]
		h.sim.After(time.Duration(i)*gap, func() { h.eng.Propose(p) })
	}
	return payloads
}

func TestSpecValidate(t *testing.T) {
	if err := spec22().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no masters", func(s *Spec) { s.Masters = nil }, "no masters"},
		{
			"two primaries",
			func(s *Spec) { s.Masters[1].Role = Primary },
			"exactly 1 primary",
		},
		{
			"standby in wrong site",
			func(s *Spec) { s.Masters[1].Site = 2 },
			"share the primary's site",
		},
		{
			"cold in primary site",
			func(s *Spec) { s.Masters[2].Site = 0 },
			"different site",
		},
		{"bad role", func(s *Spec) { s.Masters[1].Role = 9 }, "unknown role"},
		{"zero heartbeat", func(s *Spec) { s.HeartbeatInterval = 0 }, "HeartbeatInterval"},
		{
			"timeout below heartbeat",
			func(s *Spec) { s.TakeoverTimeout = s.HeartbeatInterval },
			"TakeoverTimeout",
		},
		{"no activation delay", func(s *Spec) { s.ActivationDelay = 0 }, "ActivationDelay"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := spec22()
			tt.mutate(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Validate = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestPrimaryExecutes(t *testing.T) {
	h := newHarness(t, spec2())
	payloads := proposeEvery(h, 5, 20*time.Millisecond)
	h.sim.Run(time.Second)
	for _, p := range payloads {
		if got := h.eng.ExecutedBy(p); got != 1 {
			t.Errorf("%s executed by %d masters, want 1 (primary only)", p, got)
		}
	}
	if idx, ok := h.eng.ActiveMaster(); !ok || idx != 0 {
		t.Errorf("active master = %d, %v, want 0", idx, ok)
	}
}

func TestHotStandbyTakeover(t *testing.T) {
	h := newHarness(t, spec2())
	// Kill the primary at 100 ms; standby should take over within the
	// takeover timeout and execute later commands.
	h.sim.After(100*time.Millisecond, func() {
		if err := h.nw.CrashNode(0); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	late := "after-failover"
	h.sim.After(800*time.Millisecond, func() { h.eng.Propose(late) })
	h.sim.Run(2 * time.Second)
	if got := h.eng.ExecutedBy(late); got != 1 {
		t.Errorf("%s executed by %d, want 1 (standby)", late, got)
	}
	if idx, ok := h.eng.ActiveMaster(); !ok || idx != 1 {
		t.Errorf("active master = %d, %v, want standby 1", idx, ok)
	}
}

func TestColdBackupActivation(t *testing.T) {
	h := newHarness(t, spec22())
	// Flood the primary site at 100 ms. The cold backup starts
	// activation after the takeover timeout and becomes active
	// ActivationDelay later: ~5.3 s.
	h.sim.After(100*time.Millisecond, func() { h.nw.FailSite(0) })
	during := "during-activation"
	after := "after-activation"
	h.sim.After(2*time.Second, func() { h.eng.Propose(during) })
	h.sim.After(8*time.Second, func() { h.eng.Propose(after) })
	h.sim.Run(10 * time.Second)
	if got := h.eng.ExecutedBy(during); got != 0 {
		t.Errorf("%s executed during activation window (orange downtime)", during)
	}
	if got := h.eng.ExecutedBy(after); got == 0 {
		t.Errorf("%s not executed after cold-backup activation", after)
	}
	if idx, ok := h.eng.ActiveMaster(); !ok || h.eng.spec.Masters[idx].Role != ColdBackup {
		t.Errorf("active master = %d, %v, want a cold backup", idx, ok)
	}
}

func TestColdBackupDoesNotActivateSpuriously(t *testing.T) {
	h := newHarness(t, spec22())
	proposeEvery(h, 3, 50*time.Millisecond)
	h.sim.Run(10 * time.Second)
	if idx, ok := h.eng.ActiveMaster(); !ok || idx != 0 {
		t.Errorf("active master = %d, %v, want primary 0 (no failover)", idx, ok)
	}
}

func TestBothSitesDownNoService(t *testing.T) {
	h := newHarness(t, spec22())
	h.nw.FailSite(0)
	h.nw.FailSite(1)
	h.sim.After(6*time.Second, func() { h.eng.Propose("anyone-there") })
	h.sim.Run(10 * time.Second)
	if got := h.eng.ExecutedBy("anyone-there"); got != 0 {
		t.Error("command executed with both sites down")
	}
	if _, ok := h.eng.ActiveMaster(); ok {
		t.Error("no master should be active with both sites down")
	}
}

func TestCompromisedPrimaryViolatesSafety(t *testing.T) {
	h := newHarness(t, spec2())
	if err := h.eng.Compromise(0); err != nil {
		t.Fatal(err)
	}
	h.eng.Propose("malicious-setpoint")
	h.sim.Run(time.Second)
	if !h.eng.SafetyViolated() {
		t.Error("execution by a compromised master should violate safety")
	}
}

func TestCompromisedStandbyHarmlessWhileInactive(t *testing.T) {
	h := newHarness(t, spec2())
	if err := h.eng.Compromise(1); err != nil {
		t.Fatal(err)
	}
	proposeEvery(h, 3, 20*time.Millisecond)
	h.sim.Run(time.Second)
	if h.eng.SafetyViolated() {
		t.Error("inactive compromised standby should not execute anything")
	}
}

func TestEngineValidation(t *testing.T) {
	sim := des.New(1)
	nw, err := netsim.New(sim, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, spec2()); err == nil {
		t.Error("nil network should error")
	}
	if _, err := New(nw, Spec{}); err == nil {
		t.Error("empty spec should error")
	}
	eng, err := New(nw, spec2())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Compromise(99); err == nil {
		t.Error("out-of-range compromise should error")
	}
	if _, err := eng.NodeID(99); err == nil {
		t.Error("out-of-range NodeID should error")
	}
	if id, err := eng.NodeID(1); err != nil || id != 1 {
		t.Errorf("NodeID(1) = %d, %v", id, err)
	}
}

func TestRoleStrings(t *testing.T) {
	if Primary.String() != "primary" || HotStandby.String() != "hot-standby" || ColdBackup.String() != "cold-backup" {
		t.Error("role strings wrong")
	}
	if !strings.Contains(Role(42).String(), "42") {
		t.Error("unknown role string")
	}
}

func TestExecutionCallback(t *testing.T) {
	h := newHarness(t, spec2())
	var execs []Execution
	h.eng.OnExecute(func(ex Execution) { execs = append(execs, ex) })
	h.eng.Propose("one")
	h.sim.Run(time.Second)
	if len(execs) != 1 || execs[0].Payload != "one" || execs[0].Role != Primary {
		t.Errorf("executions = %+v", execs)
	}
}
