// Package primarybackup implements the industry-standard crash-
// tolerant SCADA master architectures of the paper: configuration "2"
// (a primary master with a hot standby in one control center) and
// "2-2" (adding a cold-backup control center that takes minutes to
// activate).
//
// The hot standby monitors the primary with heartbeats and takes over
// within seconds. The cold-backup site monitors the primary *site*
// from afar; when it stops hearing from it, it starts activation and
// becomes the active master after the configured delay — the paper's
// orange state while activation is in progress.
//
// None of this tolerates intrusions: a compromised master simply
// executes whatever the attacker wants (the gray state); the scada
// layer accounts for that directly.
package primarybackup

import (
	"errors"
	"fmt"
	"time"

	"compoundthreat/internal/netsim"
)

// Role describes a master's position in the architecture.
type Role int

// Roles.
const (
	Primary Role = iota + 1
	HotStandby
	ColdBackup
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Primary:
		return "primary"
	case HotStandby:
		return "hot-standby"
	case ColdBackup:
		return "cold-backup"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// MasterSpec places one master.
type MasterSpec struct {
	Role Role
	Site int
}

// Spec describes a primary/backup group.
type Spec struct {
	// Masters lists the masters: exactly one Primary, any number of
	// HotStandby in the primary's site, and optionally ColdBackup
	// masters in a backup site.
	Masters []MasterSpec
	// NodeIDBase offsets netsim node IDs (master i -> NodeIDBase + i).
	NodeIDBase int
	// HeartbeatInterval is the primary's heartbeat period.
	HeartbeatInterval time.Duration
	// TakeoverTimeout is how long a hot standby waits without
	// heartbeats before taking over.
	TakeoverTimeout time.Duration
	// ActivationDelay is the cold-backup activation time (minutes in
	// practice; the paper's orange downtime).
	ActivationDelay time.Duration
}

// Validate reports the first specification problem found.
func (s Spec) Validate() error {
	if len(s.Masters) == 0 {
		return errors.New("primarybackup: no masters")
	}
	var primaries, colds int
	primarySite := -1
	for _, m := range s.Masters {
		switch m.Role {
		case Primary:
			primaries++
			primarySite = m.Site
		case HotStandby, ColdBackup:
		default:
			return fmt.Errorf("primarybackup: unknown role %d", int(m.Role))
		}
		if m.Role == ColdBackup {
			colds++
		}
	}
	if primaries != 1 {
		return fmt.Errorf("primarybackup: need exactly 1 primary, have %d", primaries)
	}
	for _, m := range s.Masters {
		if m.Role == HotStandby && m.Site != primarySite {
			return errors.New("primarybackup: hot standby must share the primary's site")
		}
		if m.Role == ColdBackup && m.Site == primarySite {
			return errors.New("primarybackup: cold backup must be in a different site")
		}
	}
	switch {
	case s.HeartbeatInterval <= 0:
		return errors.New("primarybackup: HeartbeatInterval must be positive")
	case s.TakeoverTimeout <= s.HeartbeatInterval:
		return errors.New("primarybackup: TakeoverTimeout must exceed HeartbeatInterval")
	case colds > 0 && s.ActivationDelay <= 0:
		return errors.New("primarybackup: cold backups need a positive ActivationDelay")
	}
	return nil
}

// Request is a client request. Networked clients send it to master
// node IDs via netsim so that partitions and site failures apply.
type Request struct{ Payload string }

// Protocol messages.
type heartbeat struct{ From int }

// Execution records one update executed by an active master.
type Execution struct {
	Master  int
	Role    Role
	Payload string
	At      time.Duration
}

type master struct {
	e           *Engine
	idx         int
	node        int
	role        Role
	site        int
	active      bool
	activating  bool
	compromised bool
	lastBeat    time.Duration
	executed    map[string]bool
}

// Engine runs one primary/backup group on a network.
type Engine struct {
	nw      *netsim.Network
	spec    Spec
	masters []*master
	onExec  func(Execution)
	started bool
	// execLog[payload] counts executions by active masters.
	execLog map[string]int
	// compromisedExec counts updates executed while the executing
	// master was compromised (the gray signal).
	compromisedExec int
}

// New builds the engine and registers its masters on the network.
func New(nw *netsim.Network, spec Spec) (*Engine, error) {
	if nw == nil {
		return nil, errors.New("primarybackup: nil network")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{nw: nw, spec: spec, execLog: make(map[string]int)}
	for i, ms := range spec.Masters {
		m := &master{
			e:        e,
			idx:      i,
			node:     spec.NodeIDBase + i,
			role:     ms.Role,
			site:     ms.Site,
			active:   ms.Role == Primary,
			executed: make(map[string]bool),
		}
		e.masters = append(e.masters, m)
		if err := nw.AddNode(m.node, ms.Site, func(from int, msg any) {
			m.onMessage(from, msg)
		}); err != nil {
			return nil, fmt.Errorf("primarybackup: register master %d: %w", i, err)
		}
	}
	return e, nil
}

// NodeID returns the netsim node ID of master idx.
func (e *Engine) NodeID(idx int) (int, error) {
	if idx < 0 || idx >= len(e.masters) {
		return 0, fmt.Errorf("primarybackup: master %d out of range", idx)
	}
	return e.masters[idx].node, nil
}

// OnExecute registers the execution callback.
func (e *Engine) OnExecute(fn func(Execution)) { e.onExec = fn }

// Start arms heartbeats and failure detectors.
func (e *Engine) Start() {
	if e.started {
		return
	}
	e.started = true
	sim := e.nw.Sim()
	for _, m := range e.masters {
		m := m
		switch m.role {
		case Primary:
			sim.Every(e.spec.HeartbeatInterval, m.sendHeartbeats)
		case HotStandby:
			sim.Every(e.spec.HeartbeatInterval, m.checkTakeover)
		case ColdBackup:
			sim.Every(e.spec.HeartbeatInterval, m.checkActivation)
		}
	}
}

// Compromise marks a master as attacker-controlled. Executions by a
// compromised active master count as safety violations.
func (e *Engine) Compromise(idx int) error {
	if idx < 0 || idx >= len(e.masters) {
		return fmt.Errorf("primarybackup: master %d out of range", idx)
	}
	e.masters[idx].compromised = true
	return nil
}

// Propose injects a client request at every live master (networked
// clients in the scada layer send request messages instead).
func (e *Engine) Propose(payload string) {
	for _, m := range e.masters {
		if e.nw.NodeUp(m.node) {
			m.onMessage(-1, Request{Payload: payload})
		}
	}
}

// ExecutedBy returns how many active masters executed the payload.
func (e *Engine) ExecutedBy(payload string) int { return e.execLog[payload] }

// SafetyViolated reports whether a compromised master executed any
// update while active.
func (e *Engine) SafetyViolated() bool { return e.compromisedExec > 0 }

// ActiveMaster returns the index of the currently active master and
// whether one is both active and alive.
func (e *Engine) ActiveMaster() (int, bool) {
	for _, m := range e.masters {
		if m.active && e.nw.NodeUp(m.node) {
			return m.idx, true
		}
	}
	return 0, false
}

func (m *master) onMessage(from int, msg any) {
	switch t := msg.(type) {
	case heartbeat:
		m.lastBeat = m.e.nw.Sim().Now()
	case Request:
		if m.active && !m.executed[t.Payload] {
			m.executed[t.Payload] = true
			m.e.execLog[t.Payload]++
			if m.compromised {
				m.e.compromisedExec++
			}
			if m.e.onExec != nil {
				m.e.onExec(Execution{
					Master: m.idx, Role: m.role,
					Payload: t.Payload, At: m.e.nw.Sim().Now(),
				})
			}
		}
	}
}

// sendHeartbeats is the primary's liveness beacon to every peer.
func (m *master) sendHeartbeats() {
	if !m.active {
		return
	}
	for _, peer := range m.e.masters {
		if peer.idx != m.idx {
			m.e.nw.Send(m.node, peer.node, heartbeat{From: m.idx})
		}
	}
}

// checkTakeover promotes a hot standby when the primary goes silent.
func (m *master) checkTakeover() {
	if m.active || !m.e.nw.NodeUp(m.node) {
		return
	}
	now := m.e.nw.Sim().Now()
	if now-m.lastBeat < m.e.spec.TakeoverTimeout {
		return
	}
	m.active = true
	// The new active master heartbeats from now on.
	m.e.nw.Sim().Every(m.e.spec.HeartbeatInterval, m.sendHeartbeats)
}

// checkActivation starts cold-backup activation when the primary site
// goes silent, becoming active after the activation delay.
func (m *master) checkActivation() {
	if m.active || m.activating || !m.e.nw.NodeUp(m.node) {
		return
	}
	now := m.e.nw.Sim().Now()
	if now-m.lastBeat < m.e.spec.TakeoverTimeout {
		return
	}
	m.activating = true
	m.e.nw.Sim().After(m.e.spec.ActivationDelay, func() {
		m.activating = false
		// Activate only if the primary site is still silent.
		if m.e.nw.Sim().Now()-m.lastBeat >= m.e.spec.TakeoverTimeout {
			m.active = true
			m.e.nw.Sim().Every(m.e.spec.HeartbeatInterval, m.sendHeartbeats)
		}
	})
}
