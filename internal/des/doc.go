// Package des is a deterministic discrete-event simulation kernel: a
// virtual clock and an event queue ordered by (time, schedule order).
//
// [Sim] is the simulator; [New] seeds it, and everything scheduled on
// it runs in virtual time — the SCADA behavioral substrate (netsim,
// bft, primarybackup, scada) is built on top, which lets the
// repository validate the paper's analytical Table I against running
// protocol implementations without wall-clock flakiness.
//
// Determinism is the design constraint: ties at the same virtual time
// fire in schedule order, randomness comes only from the seeded
// source, and the kernel is strictly single-threaded — all event
// handlers run on the caller's goroutine, so simulation code needs no
// locks and two runs with the same seed produce byte-identical event
// sequences. Tests rely on this to assert exact delivery orders and
// measured states.
package des
