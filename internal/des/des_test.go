package des

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.After(time.Millisecond, func() { order = append(order, i) })
	}
	s.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestRunHorizon(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d * time.Millisecond
		s.After(d, func() { fired = append(fired, d) })
	}
	end := s.Run(12 * time.Millisecond)
	if len(fired) != 2 {
		t.Errorf("fired %d events before horizon, want 2", len(fired))
	}
	if end != 12*time.Millisecond {
		t.Errorf("Run returned %v, want horizon", end)
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	// Events at exactly the horizon run.
	s2 := New(1)
	ran := false
	s2.After(10*time.Millisecond, func() { ran = true })
	s2.Run(10 * time.Millisecond)
	if !ran {
		t.Error("event at horizon did not run")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var times []time.Duration
	s.After(time.Millisecond, func() {
		times = append(times, s.Now())
		s.After(time.Millisecond, func() {
			times = append(times, s.Now())
		})
	})
	s.RunUntilIdle()
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Errorf("times = %v", times)
	}
}

func TestNegativeDelayRunsNow(t *testing.T) {
	s := New(1)
	var at time.Duration = -1
	s.After(5*time.Millisecond, func() {
		s.After(-time.Second, func() { at = s.Now() })
	})
	s.RunUntilIdle()
	if at != 5*time.Millisecond {
		t.Errorf("negative-delay event ran at %v, want 5ms", at)
	}
}

func TestNilEventIgnored(t *testing.T) {
	s := New(1)
	s.After(time.Millisecond, nil)
	if s.Pending() != 0 {
		t.Error("nil fn should not be queued")
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	count := 0
	cancel := s.Every(10*time.Millisecond, func() {
		count++
		if count == 3 {
			s.Stop()
		}
	})
	defer cancel()
	s.Run(time.Second)
	if count != 3 {
		t.Errorf("ticks = %d, want 3 (stopped)", count)
	}
}

func TestEveryCancel(t *testing.T) {
	s := New(1)
	count := 0
	var cancel func()
	cancel = s.Every(10*time.Millisecond, func() {
		count++
		if count == 2 {
			cancel()
		}
	})
	s.Run(time.Second)
	if count != 2 {
		t.Errorf("ticks after cancel = %d, want 2", count)
	}
}

func TestEveryInvalid(t *testing.T) {
	s := New(1)
	s.Every(0, func() {})
	s.Every(time.Millisecond, nil)
	if s.Pending() != 0 {
		t.Error("invalid Every should schedule nothing")
	}
}

func TestStopInsideHandler(t *testing.T) {
	s := New(1)
	ran := 0
	s.After(time.Millisecond, func() { ran++; s.Stop() })
	s.After(2*time.Millisecond, func() { ran++ })
	s.Run(time.Second)
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (stopped)", ran)
	}
	// Run can resume afterwards.
	s.Run(time.Second)
	if ran != 2 {
		t.Errorf("ran after resume = %d, want 2", ran)
	}
}

func TestDeterministicRng(t *testing.T) {
	seq := func(seed int64) []int64 {
		s := New(seed)
		var out []int64
		for i := 0; i < 5; i++ {
			out = append(out, s.Rng().Int63())
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different sequences")
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical sequences")
	}
}

func TestRunAdvancesToHorizonWhenIdle(t *testing.T) {
	s := New(1)
	end := s.Run(time.Second)
	if end != time.Second || s.Now() != time.Second {
		t.Errorf("idle Run ended at %v, want 1s", end)
	}
}
