package des

import (
	"container/heap"
	"math/rand"
	"time"
)

// Sim is a discrete-event simulator. It is single-threaded: all event
// handlers run sequentially on the caller's goroutine inside Run.
type Sim struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// New returns a simulator whose randomness derives from seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rng returns the simulation's deterministic random source. Handlers
// must use this (never the global source) to keep runs reproducible.
func (s *Sim) Rng() *rand.Rand { return s.rng }

// After schedules fn to run d after the current virtual time. A
// negative delay runs at the current time (after already-queued events
// for that instant). Events scheduled for the same instant run in
// schedule order.
func (s *Sim) After(d time.Duration, fn func()) {
	if fn == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + d, seq: s.seq, fn: fn})
}

// Every schedules fn at the given period until the simulation stops or
// cancel is called. The first firing is one period from now.
func (s *Sim) Every(period time.Duration, fn func()) (cancel func()) {
	if period <= 0 || fn == nil {
		return func() {}
	}
	done := false
	var tick func()
	tick = func() {
		if done || s.stopped {
			return
		}
		fn()
		s.After(period, tick)
	}
	s.After(period, tick)
	return func() { done = true }
}

// Run processes events until the queue is empty, the horizon is
// reached, or Stop is called. It returns the virtual time at exit.
// Events scheduled exactly at the horizon still run.
func (s *Sim) Run(until time.Duration) time.Duration {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		next.fn()
	}
	if s.now < until {
		s.now = until
	}
	return s.now
}

// RunUntilIdle processes every queued event regardless of time.
func (s *Sim) RunUntilIdle() time.Duration {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := heap.Pop(&s.queue).(*event)
		s.now = next.at
		next.fn()
	}
	return s.now
}

// Stop halts Run after the current event handler returns.
func (s *Sim) Stop() { s.stopped = true }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
