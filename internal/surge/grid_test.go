package surge

import (
	"math"
	"testing"

	"compoundthreat/internal/geo"
	"compoundthreat/internal/terrain"
)

// linearWithin is the pre-index reference: every segment within radius
// of p, ascending.
func linearWithin(s *Solver, p geo.XY, radius float64) []int32 {
	var out []int32
	for i, seg := range s.segments {
		if geo.DistanceXY(seg.Mid, p) <= radius {
			out = append(out, int32(i))
		}
	}
	return out
}

// linearNearest is the pre-index reference nearest scan: first lowest
// index wins ties.
func linearNearest(s *Solver, p geo.XY) int {
	nearest, nearestDist := 0, math.Inf(1)
	for i, seg := range s.segments {
		if d := geo.DistanceXY(seg.Mid, p); d < nearestDist {
			nearest, nearestDist = i, d
		}
	}
	return nearest
}

// gridProbes covers the interesting query geometries: inside the
// island, on shore, offshore, far outside the grid extent, and the
// corners.
func gridProbes() []geo.XY {
	probes := []geo.XY{
		{X: 0, Y: 0},
		{X: 0, Y: -10007},
		{X: 123, Y: 9800},
		{X: -9000, Y: 40},
		{X: 60000, Y: 60000},
		{X: -80000, Y: 0},
		{X: 0, Y: -120000},
		{X: 10750, Y: -9990},
	}
	for x := -30000.0; x <= 30000; x += 7300 {
		for y := -30000.0; y <= 30000; y += 6100 {
			probes = append(probes, geo.XY{X: x, Y: y})
		}
	}
	return probes
}

func solversUnderTest(t *testing.T) map[string]*Solver {
	t.Helper()
	oahu, err := NewSolver(terrain.NewOahu(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Solver{
		"island": newTestSolver(t),
		"oahu":   oahu,
	}
}

func TestGridWithinMatchesLinearScan(t *testing.T) {
	for name, s := range solversUnderTest(t) {
		for _, p := range gridProbes() {
			for _, radius := range []float64{0, 100, 1500, 4000, 20000, 300000} {
				want := linearWithin(s, p, radius)
				got := s.grid.appendWithin(nil, p, radius)
				if len(got) != len(want) {
					t.Fatalf("%s: appendWithin(%v, %v): got %d segments, want %d",
						name, p, radius, len(got), len(want))
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("%s: appendWithin(%v, %v)[%d] = %d, want %d",
							name, p, radius, k, got[k], want[k])
					}
				}
			}
		}
	}
}

func TestGridNearestMatchesLinearScan(t *testing.T) {
	for name, s := range solversUnderTest(t) {
		for _, p := range gridProbes() {
			if got, want := s.grid.nearest(p), linearNearest(s, p); got != want {
				t.Fatalf("%s: nearest(%v) = %d, want %d (dist got %v, want %v)",
					name, p, got, want,
					geo.DistanceXY(s.segments[got].Mid, p),
					geo.DistanceXY(s.segments[want].Mid, p))
			}
		}
	}
}

// TestGridNearestSegmentMidpoints pins the exact-hit case: querying at
// every segment midpoint must return that segment (or an exact tie at
// a lower index, matching the linear scan).
func TestGridNearestSegmentMidpoints(t *testing.T) {
	for name, s := range solversUnderTest(t) {
		for i := range s.segments {
			p := s.segments[i].Mid
			if got, want := s.grid.nearest(p), linearNearest(s, p); got != want {
				t.Fatalf("%s: nearest(mid %d) = %d, want %d", name, i, got, want)
			}
		}
	}
}

// TestFieldMatchesLinearNearest asserts the Field satellite: with the
// spatial index in place, Field output on the Oahu map-rendering grid
// (the 100x36 cell centers of cmd/hazardgen) is identical to the
// O(points x segments) nearest-segment reference it replaced.
func TestFieldMatchesLinearNearest(t *testing.T) {
	tm := terrain.NewOahu()
	s, err := NewSolver(tm, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tr := southTrack(t, 60)

	const mapCols, mapRows = 100, 36
	minPt, maxPt := tm.Coastline().Bounds()
	pad := 8000.0
	minPt = minPt.Sub(geo.XY{X: pad, Y: pad})
	maxPt = maxPt.Add(geo.XY{X: pad, Y: pad})
	dx := (maxPt.X - minPt.X) / mapCols
	dy := (maxPt.Y - minPt.Y) / mapRows
	points := make([]geo.XY, 0, mapCols*mapRows)
	for row := 0; row < mapRows; row++ {
		for col := 0; col < mapCols; col++ {
			points = append(points, geo.XY{
				X: minPt.X + (float64(col)+0.5)*dx,
				Y: maxPt.Y - (float64(row)+0.5)*dy,
			})
		}
	}

	got := s.Field(tr, points)
	peaks := s.SegmentPeaks(tr)
	for i, p := range points {
		eta := peaks[linearNearest(s, p)]
		if tm.IsLand(p) {
			eta *= math.Exp(-tm.DistanceToCoast(p) / s.params.InlandDecayMeters)
		}
		if got[i] != eta {
			t.Fatalf("Field[%d] (%v) = %v, reference = %v", i, p, got[i], eta)
		}
	}
}
