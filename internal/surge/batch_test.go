package surge

import (
	"testing"

	"compoundthreat/internal/geo"
	"compoundthreat/internal/obs"
)

// batchTestRegions mixes the geometries Generate compiles: zone-sized
// disks, site-sized averaging disks, an empty disk that falls back to
// the nearest segment, and a whole-island disk.
func batchTestRegions() []Region {
	return []Region{
		{Center: geo.XY{X: 0, Y: -10007}, Radius: 5000},
		{Center: geo.XY{X: 0, Y: 10007}, Radius: 5000},
		{Center: geo.XY{X: 123, Y: -9900}, Radius: 4000},
		{Center: geo.XY{X: 0, Y: -60000}, Radius: 100}, // empty: nearest fallback
		{Center: geo.XY{X: 0, Y: 0}, Radius: 300000},   // everything
		{Center: geo.XY{X: -9000, Y: 40}, Radius: 4000},
	}
}

// TestBatchMatchesRegionPeak is the tentpole bit-identity contract:
// one PeakAverages scan must reproduce every region's independent
// RegionPeak result exactly, on both the synthetic island and the real
// Oahu geometry.
func TestBatchMatchesRegionPeak(t *testing.T) {
	for name, s := range solversUnderTest(t) {
		be, err := s.NewBatchEvaluator(batchTestRegions())
		if err != nil {
			t.Fatal(err)
		}
		if be.NumRegions() != len(batchTestRegions()) {
			t.Fatalf("%s: NumRegions = %d, want %d", name, be.NumRegions(), len(batchTestRegions()))
		}
		if be.UnionSize() == 0 || be.UnionSize() > s.NumSegments() {
			t.Fatalf("%s: UnionSize = %d out of range (0, %d]", name, be.UnionSize(), s.NumSegments())
		}
		for _, km := range []float64{30, 60, 120} {
			tr := southTrack(t, km)
			out := make([]float64, be.NumRegions())
			var sc Scratch
			if err := be.PeakAverages(tr, &sc, out); err != nil {
				t.Fatal(err)
			}
			for j, r := range batchTestRegions() {
				want := s.RegionPeak(tr, r.Center, r.Radius)
				if out[j] != want {
					t.Fatalf("%s: region %d at %v km: batch %v != RegionPeak %v",
						name, j, km, out[j], want)
				}
			}
		}
	}
}

// TestBatchScratchReuse proves a warm scratch carried across tracks
// does not leak state between calls.
func TestBatchScratchReuse(t *testing.T) {
	s := newTestSolver(t)
	be, err := s.NewBatchEvaluator(batchTestRegions())
	if err != nil {
		t.Fatal(err)
	}
	var warm Scratch
	out := make([]float64, be.NumRegions())
	for _, km := range []float64{120, 30, 60} {
		tr := southTrack(t, km)
		if err := be.PeakAverages(tr, &warm, out); err != nil {
			t.Fatal(err)
		}
		fresh := make([]float64, be.NumRegions())
		if err := be.PeakAverages(tr, &Scratch{}, fresh); err != nil {
			t.Fatal(err)
		}
		for j := range out {
			if out[j] != fresh[j] {
				t.Fatalf("km %v region %d: warm scratch %v != fresh %v", km, j, out[j], fresh[j])
			}
		}
	}
}

func TestBatchEvaluatorValidation(t *testing.T) {
	s := newTestSolver(t)
	if _, err := s.NewBatchEvaluator(nil); err == nil {
		t.Error("NewBatchEvaluator(nil) should error")
	}
	be, err := s.NewBatchEvaluator(batchTestRegions())
	if err != nil {
		t.Fatal(err)
	}
	tr := southTrack(t, 60)
	if err := be.PeakAverages(tr, &Scratch{}, make([]float64, 1)); err == nil {
		t.Error("PeakAverages with wrong out length should error")
	}
}

// TestBatchCounters checks the generation observability contract: one
// setup evaluation per union segment per step, and every further
// consumer reference counted as a memo hit.
func TestBatchCounters(t *testing.T) {
	rec := obs.New()
	obs.Enable(rec)
	defer obs.Enable(nil)

	s := newTestSolver(t)
	be, err := s.NewBatchEvaluator(batchTestRegions())
	if err != nil {
		t.Fatal(err)
	}
	tr := southTrack(t, 60)
	out := make([]float64, be.NumRegions())
	if err := be.PeakAverages(tr, &Scratch{}, out); err != nil {
		t.Fatal(err)
	}

	steps := int64(tr.Duration()/s.params.StepInterval) + 1
	if got := rec.Counter("surge.track_steps").Value(); got != steps {
		t.Errorf("track_steps = %d, want %d", got, steps)
	}
	if got := rec.Counter("surge.setup_evals").Value(); got != steps*int64(be.UnionSize()) {
		t.Errorf("setup_evals = %d, want %d", got, steps*int64(be.UnionSize()))
	}
	refs := int64(len(be.refs))
	wantHits := steps * (refs - int64(be.UnionSize()))
	if got := rec.Counter("surge.setup_memo_hits").Value(); got != wantHits {
		t.Errorf("setup_memo_hits = %d, want %d", got, wantHits)
	}
	if wantHits <= 0 {
		t.Errorf("test regions should share segments (memo hits %d)", wantHits)
	}
}

// TestPeakAveragesZeroAlloc pins the allocation-free steady state with
// observability both disabled and enabled, in the spirit of
// obs.TestTraceDisabledZeroAlloc.
func TestPeakAveragesZeroAlloc(t *testing.T) {
	s := newTestSolver(t)
	tr := southTrack(t, 60)

	run := func(t *testing.T) {
		t.Helper()
		be, err := s.NewBatchEvaluator(batchTestRegions())
		if err != nil {
			t.Fatal(err)
		}
		var sc Scratch
		out := make([]float64, be.NumRegions())
		if err := be.PeakAverages(tr, &sc, out); err != nil {
			t.Fatal(err) // warm the scratch
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := be.PeakAverages(tr, &sc, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("PeakAverages allocates %v per call, want 0", allocs)
		}
	}

	t.Run("metrics-disabled", func(t *testing.T) {
		obs.Enable(nil)
		run(t)
	})
	t.Run("metrics-enabled", func(t *testing.T) {
		obs.Enable(obs.New())
		defer obs.Enable(nil)
		run(t)
	})
}
