package surge

import (
	"math"

	"compoundthreat/internal/geo"
)

// segmentGrid is a uniform spatial hash over shoreline segment
// midpoints. It answers the two geometric queries the solver needs —
// all segments within a radius of a point, and the nearest segment to
// a point — in time proportional to the cells the query disk touches
// instead of the O(segments) linear scans the solver used to do per
// query. Both queries reproduce the linear scan exactly: radius
// membership uses the same planar distance test, results come back in
// ascending segment-index order, and nearest-segment ties resolve to
// the lowest index, so every caller stays bit-identical to the
// pre-index code.
type segmentGrid struct {
	mids       []geo.XY
	minX, minY float64
	cell       float64 // cell edge length in meters
	nx, ny     int
	// CSR layout: cell c holds items[start[c]:start[c+1]], ascending.
	start []int32
	items []int32
}

// newSegmentGrid indexes the midpoints with the given cell size.
func newSegmentGrid(mids []geo.XY, cell float64) *segmentGrid {
	g := &segmentGrid{mids: mids, cell: cell}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, m := range mids {
		minX, maxX = math.Min(minX, m.X), math.Max(maxX, m.X)
		minY, maxY = math.Min(minY, m.Y), math.Max(maxY, m.Y)
	}
	g.minX, g.minY = minX, minY
	g.nx = int((maxX-minX)/cell) + 1
	g.ny = int((maxY-minY)/cell) + 1

	counts := make([]int32, g.nx*g.ny+1)
	for _, m := range mids {
		counts[g.cellIndex(m)+1]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	g.start = counts
	g.items = make([]int32, len(mids))
	fill := make([]int32, g.nx*g.ny)
	// Appending in ascending segment order keeps each cell's item list
	// ascending, which the query methods rely on.
	for i, m := range mids {
		c := g.cellIndex(m)
		g.items[g.start[c]+fill[c]] = int32(i)
		fill[c]++
	}
	return g
}

// cellCoords returns the clamped cell coordinates containing p.
func (g *segmentGrid) cellCoords(p geo.XY) (int, int) {
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

func (g *segmentGrid) cellIndex(p geo.XY) int {
	cx, cy := g.cellCoords(p)
	return cy*g.nx + cx
}

// appendWithin appends the indices of all midpoints within radius of p
// to dst, in ascending index order, and returns the extended slice.
func (g *segmentGrid) appendWithin(dst []int32, p geo.XY, radius float64) []int32 {
	cx0 := int(math.Floor((p.X - radius - g.minX) / g.cell))
	cx1 := int(math.Floor((p.X + radius - g.minX) / g.cell))
	cy0 := int(math.Floor((p.Y - radius - g.minY) / g.cell))
	cy1 := int(math.Floor((p.Y + radius - g.minY) / g.cell))
	cx0, cy0 = clampCell(cx0, g.nx), clampCell(cy0, g.ny)
	cx1, cy1 = clampCell(cx1, g.nx), clampCell(cy1, g.ny)
	base := len(dst)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			c := cy*g.nx + cx
			for _, i := range g.items[g.start[c]:g.start[c+1]] {
				if geo.DistanceXY(g.mids[i], p) <= radius {
					dst = append(dst, i)
				}
			}
		}
	}
	// Cells are visited row-major, so the gathered indices are sorted
	// within each cell but not across cells; restore global ascending
	// order (lists are small — insertion sort avoids an allocation).
	insertionSortInt32(dst[base:])
	return dst
}

// nearest returns the index of the midpoint closest to p, resolving
// distance ties to the lowest index (matching a first-wins linear
// scan). It expands square rings of cells outward from p's cell and
// stops once no unvisited cell can beat the best distance found.
func (g *segmentGrid) nearest(p geo.XY) int {
	cx, cy := g.cellCoords(p)
	// Distance from p to its clamped home cell (0 when p is inside the
	// grid): ring k cells are at least (k-1)*cell beyond that, which
	// bounds how far the search must expand.
	homeMinX := g.minX + float64(cx)*g.cell
	homeMinY := g.minY + float64(cy)*g.cell
	d0 := rectDist(p, homeMinX, homeMinY, homeMinX+g.cell, homeMinY+g.cell)

	best := int32(-1)
	bestDist := math.Inf(1)
	scan := func(c int) {
		for _, i := range g.items[g.start[c]:g.start[c+1]] {
			d := geo.DistanceXY(g.mids[i], p)
			if d < bestDist || (d == bestDist && i < best) {
				best, bestDist = i, d
			}
		}
	}
	for ring := 0; ; ring++ {
		if best >= 0 && float64(ring-1)*g.cell-d0 > bestDist {
			break
		}
		x0, x1 := cx-ring, cx+ring
		y0, y1 := cy-ring, cy+ring
		if x0 < 0 && y0 < 0 && x1 >= g.nx && y1 >= g.ny {
			// The ring already covered the whole grid.
			break
		}
		for cyi := max(y0, 0); cyi <= min(y1, g.ny-1); cyi++ {
			onYEdge := cyi == y0 || cyi == y1
			for cxi := max(x0, 0); cxi <= min(x1, g.nx-1); cxi++ {
				if !onYEdge && cxi != x0 && cxi != x1 {
					cxi = x1 - 1 // interior of the ring: skip to the far edge
					continue
				}
				scan(cyi*g.nx + cxi)
			}
		}
	}
	return int(best)
}

// rectDist is the distance from p to the axis-aligned rectangle
// [x0,x1]x[y0,y1] (0 when p is inside).
func rectDist(p geo.XY, x0, y0, x1, y1 float64) float64 {
	dx := math.Max(0, math.Max(x0-p.X, p.X-x1))
	dy := math.Max(0, math.Max(y0-p.Y, p.Y-y1))
	return math.Hypot(dx, dy)
}

func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

func insertionSortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
