package surge

import (
	"errors"

	"compoundthreat/internal/geo"
	"compoundthreat/internal/obs"
	"compoundthreat/internal/wind"
)

// Region is one averaging consumer registered with a BatchEvaluator: a
// disk over the shoreline whose member segments' instantaneous setups
// are averaged each time step. Sites use their averaging radius;
// inundation zones use their zone geometry.
type Region struct {
	Center geo.XY
	Radius float64
}

// BatchEvaluator evaluates the peak average water-surface elevation of
// many regions in a single scan of a storm track. It resolves the
// union of every region's member segments once at construction, then
// per time step evaluates each union segment exactly once into a
// shared setup vector and accumulates every region's average from it —
// the memoization that makes ensemble generation a single-scan
// pipeline. Region membership, per-region summation order, the
// average, and the peak comparison are all identical to RegionPeak and
// Inundation, so the results are bit-identical to evaluating each
// region independently.
//
// A BatchEvaluator is immutable after construction and safe for
// concurrent use; per-call mutable state lives in a Scratch, one per
// worker.
type BatchEvaluator struct {
	s *Solver
	// union holds the distinct segment indices needed by any region, in
	// ascending order; the shared setup vector is indexed by position in
	// this slice.
	union []int32
	// CSR consumer table: region j sums setup-vector positions
	// refs[offsets[j]:offsets[j+1]], ordered by ascending segment index
	// to preserve the reference summation order.
	offsets []int32
	refs    []int32
	// cnt[j] is float64(len(region j's segments)), the divisor of the
	// average (kept as a divisor, not an inverse, for bit-identity).
	cnt []float64

	// Instruments resolved at construction; nil-safe no-ops when
	// observability is disabled.
	trackSteps *obs.Counter
	setupEvals *obs.Counter
	memoHits   *obs.Counter
}

// Scratch is the reusable per-worker state of PeakAverages: the shared
// per-step setup vector. A zero Scratch is valid; after the first call
// sized to the evaluator, subsequent calls allocate nothing.
type Scratch struct {
	setup []float64
}

// NewBatchEvaluator compiles the regions into a single-scan evaluator.
func (s *Solver) NewBatchEvaluator(regions []Region) (*BatchEvaluator, error) {
	if len(regions) == 0 {
		return nil, errors.New("surge: NewBatchEvaluator needs at least one region")
	}
	b := &BatchEvaluator{
		s:       s,
		offsets: make([]int32, 1, len(regions)+1),
		cnt:     make([]float64, 0, len(regions)),
	}
	for _, r := range regions {
		b.refs = s.regionSegments(b.refs, r.Center, r.Radius)
		b.offsets = append(b.offsets, int32(len(b.refs)))
		b.cnt = append(b.cnt, float64(int(b.offsets[len(b.offsets)-1])-int(b.offsets[len(b.offsets)-2])))
	}

	// Collapse the per-region segment lists into the ascending union and
	// rewrite refs from segment indices to setup-vector positions.
	pos := make([]int32, len(s.segments))
	for i := range pos {
		pos[i] = -1
	}
	for _, i := range b.refs {
		pos[i] = 0
	}
	for i := range pos {
		if pos[i] == 0 {
			pos[i] = int32(len(b.union))
			b.union = append(b.union, int32(i))
		}
	}
	for k, i := range b.refs {
		b.refs[k] = pos[i]
	}

	rec := obs.Default()
	b.trackSteps = rec.Counter("surge.track_steps")
	b.setupEvals = rec.Counter("surge.setup_evals")
	b.memoHits = rec.Counter("surge.setup_memo_hits")
	return b, nil
}

// NumRegions returns how many regions the evaluator was compiled for.
func (b *BatchEvaluator) NumRegions() int { return len(b.offsets) - 1 }

// UnionSize returns how many distinct segments the regions reference —
// the number of setup evaluations performed per time step.
func (b *BatchEvaluator) UnionSize() int { return len(b.union) }

// PeakAverages scans the track once and writes, for every region j,
// the peak over time of the average instantaneous setup across the
// region's segments into out[j]. out must have length NumRegions.
// With a warm Scratch the call performs no allocations.
func (b *BatchEvaluator) PeakAverages(tr *wind.Track, sc *Scratch, out []float64) error {
	if len(out) != b.NumRegions() {
		return errors.New("surge: PeakAverages out length must equal NumRegions")
	}
	if cap(sc.setup) < len(b.union) {
		sc.setup = make([]float64, len(b.union))
	}
	setup := sc.setup[:len(b.union)]
	for j := range out {
		out[j] = 0
	}
	// The track scan is inlined (rather than routed through scanTrack's
	// callback) so a warm call allocates nothing — the closure a
	// callback would capture escapes to the heap.
	steps := 0
	start := tr.Start()
	end := start + tr.Duration()
	for t := start; t <= end; t += b.s.params.StepInterval {
		steps++
		ss := b.s.newStepSetup(tr.At(t))
		for k, i := range b.union {
			setup[k] = b.s.setupAtStep(int(i), &ss)
		}
		for j := range out {
			var sum float64
			for _, r := range b.refs[b.offsets[j]:b.offsets[j+1]] {
				sum += setup[r]
			}
			if avg := sum / b.cnt[j]; avg > out[j] {
				out[j] = avg
			}
		}
	}
	b.trackSteps.Add(int64(steps))
	b.setupEvals.Add(int64(steps * len(b.union)))
	b.memoHits.Add(int64(steps * (len(b.refs) - len(b.union))))
	return nil
}
