package surge

import (
	"math"
	"testing"
	"time"

	"compoundthreat/internal/geo"
	"compoundthreat/internal/terrain"
	"compoundthreat/internal/wind"
)

// testIsland builds a 20 km square island centered at (0, 0).
func testIsland(t *testing.T) *terrain.Model {
	t.Helper()
	m, err := terrain.New(terrain.Config{
		Name:   "TestIsland",
		Origin: geo.Point{Lat: 21, Lon: -158},
		Coastline: []geo.Point{
			{Lat: 21 - 0.09, Lon: -158 - 0.097},
			{Lat: 21 - 0.09, Lon: -158 + 0.097},
			{Lat: 21 + 0.09, Lon: -158 + 0.097},
			{Lat: 21 + 0.09, Lon: -158 - 0.097},
		},
		CoastalRampSlope:        0.004,
		CoastalPlainWidthMeters: 3000,
		InlandSlope:             0.02,
		OffshoreSlope:           0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// southTrack returns a track passing south of the island moving west,
// putting the island on the storm's strong (right) side with southerly
// onshore winds on the south shore at closest approach.
func southTrack(t *testing.T, closestApproachKm float64) *wind.Track {
	t.Helper()
	lat := 21 - 0.09 - closestApproachKm/111.0
	tr, err := wind.NewTrack([]wind.TrackPoint{
		{
			Offset:             0,
			Center:             geo.Point{Lat: lat, Lon: -156.5},
			CentralPressureHPa: 955, RMaxMeters: 40000, HollandB: 1.6,
		},
		{
			Offset:             24 * time.Hour,
			Center:             geo.Point{Lat: lat, Lon: -159.5},
			CentralPressureHPa: 955, RMaxMeters: 40000, HollandB: 1.6,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testParams() Params {
	p := DefaultParams()
	p.StepInterval = 30 * time.Minute
	return p
}

func newTestSolver(t *testing.T) *Solver {
	t.Helper()
	s, err := NewSolver(testIsland(t), testParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero fetch", func(p *Params) { p.FetchMeters = 0 }},
		{"zero decay", func(p *Params) { p.InlandDecayMeters = 0 }},
		{"zero averaging", func(p *Params) { p.AveragingRadiusMeters = 0 }},
		{"zero segment", func(p *Params) { p.MaxSegmentMeters = 0 }},
		{"zero step", func(p *Params) { p.StepInterval = 0 }},
		{"zero min depth", func(p *Params) { p.MinOffshoreDepthMeters = 0 }},
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate: nil, want error")
			}
		})
	}
}

func TestNewSolverInvalidParams(t *testing.T) {
	if _, err := NewSolver(testIsland(t), Params{}); err == nil {
		t.Error("NewSolver with zero params should error")
	}
}

func TestSegmentPeaksPositiveOnExposedShore(t *testing.T) {
	s := newTestSolver(t)
	tr := southTrack(t, 45)
	peaks := s.SegmentPeaks(tr)
	if len(peaks) != s.NumSegments() {
		t.Fatalf("peaks length %d != segments %d", len(peaks), s.NumSegments())
	}
	var maxPeak float64
	for _, p := range peaks {
		if p > maxPeak {
			maxPeak = p
		}
	}
	if maxPeak < 0.5 {
		t.Errorf("max coastal surge = %v m, want >= 0.5 for a close CAT2", maxPeak)
	}
	if maxPeak > 8 {
		t.Errorf("max coastal surge = %v m, implausibly high for CAT2", maxPeak)
	}
}

func TestSouthShoreExceedsNorthShore(t *testing.T) {
	// A storm passing south must pile more water on the south shore
	// (onshore winds) than the north shore (lee side).
	s := newTestSolver(t)
	tr := southTrack(t, 45)
	south := s.Inundation(tr, []Site{{Pos: geo.XY{X: 0, Y: -9900}, GroundElevationMeters: 0}})
	north := s.Inundation(tr, []Site{{Pos: geo.XY{X: 0, Y: 9900}, GroundElevationMeters: 0}})
	if south[0] <= north[0] {
		t.Errorf("south inundation %v should exceed north %v", south[0], north[0])
	}
}

func TestSurgeDecreasesWithDistance(t *testing.T) {
	// Doubling the closest-approach distance must not increase surge.
	s := newTestSolver(t)
	site := []Site{{Pos: geo.XY{X: 0, Y: -9900}, GroundElevationMeters: 0}}
	near := s.Inundation(southTrack(t, 40), site)[0]
	far := s.Inundation(southTrack(t, 120), site)[0]
	if far > near {
		t.Errorf("far-track surge %v exceeds near-track %v", far, near)
	}
	if near == 0 {
		t.Error("near-track surge should be positive at sea-level site")
	}
}

func TestInundationElevationMonotone(t *testing.T) {
	// Higher ground elevation must give less (never more) inundation,
	// and high-enough ground gives exactly zero.
	s := newTestSolver(t)
	tr := southTrack(t, 40)
	pos := geo.XY{X: 0, Y: -9900}
	depths := s.Inundation(tr, []Site{
		{Pos: pos, GroundElevationMeters: 0},
		{Pos: pos, GroundElevationMeters: 0.5},
		{Pos: pos, GroundElevationMeters: 1.5},
		{Pos: pos, GroundElevationMeters: 50},
	})
	for i := 1; i < len(depths); i++ {
		if depths[i] > depths[i-1] {
			t.Errorf("inundation increased with elevation: %v", depths)
		}
	}
	if depths[0] <= 0 {
		t.Error("sea-level site should flood under a close CAT2")
	}
	if depths[3] != 0 {
		t.Errorf("50 m site inundation = %v, want 0", depths[3])
	}
}

func TestInlandDecay(t *testing.T) {
	// Same elevation, deeper inland: less inundation.
	s := newTestSolver(t)
	tr := southTrack(t, 40)
	depths := s.Inundation(tr, []Site{
		{Pos: geo.XY{X: 0, Y: -9900}, GroundElevationMeters: 0},
		{Pos: geo.XY{X: 0, Y: -5000}, GroundElevationMeters: 0},
		{Pos: geo.XY{X: 0, Y: 0}, GroundElevationMeters: 0},
	})
	if !(depths[0] > depths[1] && depths[1] >= depths[2]) {
		t.Errorf("inundation should decay inland, got %v", depths)
	}
}

func TestInundationNeverNegative(t *testing.T) {
	s := newTestSolver(t)
	tr := southTrack(t, 200)
	sites := []Site{
		{Pos: geo.XY{X: 0, Y: -9900}, GroundElevationMeters: 100},
		{Pos: geo.XY{X: 0, Y: 9900}, GroundElevationMeters: 0},
		{Pos: geo.XY{X: 0, Y: 0}, GroundElevationMeters: 3},
	}
	for _, d := range s.Inundation(tr, sites) {
		if d < 0 {
			t.Errorf("negative inundation %v", d)
		}
	}
}

func TestInundationEmptySites(t *testing.T) {
	s := newTestSolver(t)
	if got := s.Inundation(southTrack(t, 40), nil); got != nil {
		t.Errorf("Inundation(nil sites) = %v, want nil", got)
	}
}

func TestShallowShelfAmplifies(t *testing.T) {
	// The same storm on the same coast with a shallow shelf must give
	// strictly more surge than the default bathymetry.
	cfg := terrain.Config{
		Name:   "ShelfIsland",
		Origin: geo.Point{Lat: 21, Lon: -158},
		Coastline: []geo.Point{
			{Lat: 21 - 0.09, Lon: -158 - 0.097},
			{Lat: 21 - 0.09, Lon: -158 + 0.097},
			{Lat: 21 + 0.09, Lon: -158 + 0.097},
			{Lat: 21 + 0.09, Lon: -158 - 0.097},
		},
		CoastalRampSlope:        0.004,
		CoastalPlainWidthMeters: 3000,
		InlandSlope:             0.02,
		OffshoreSlope:           0.02,
		Shelves: []terrain.Shelf{{
			Name:         "SouthShelf",
			Center:       geo.Point{Lat: 21 - 0.09, Lon: -158},
			RadiusMeters: 12000,
			SlopeFactor:  0.3,
		}},
	}
	shelved, err := terrain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sShelf, err := NewSolver(shelved, testParams())
	if err != nil {
		t.Fatal(err)
	}
	sPlain := newTestSolver(t)
	tr := southTrack(t, 45)
	site := []Site{{Pos: geo.XY{X: 0, Y: -9900}, GroundElevationMeters: 0}}
	withShelf := sShelf.Inundation(tr, site)[0]
	without := sPlain.Inundation(tr, site)[0]
	if withShelf <= without {
		t.Errorf("shelf surge %v should exceed plain surge %v", withShelf, without)
	}
}

func TestFunnelAmplifies(t *testing.T) {
	cfg := terrain.Config{
		Name:   "FunnelIsland",
		Origin: geo.Point{Lat: 21, Lon: -158},
		Coastline: []geo.Point{
			{Lat: 21 - 0.09, Lon: -158 - 0.097},
			{Lat: 21 - 0.09, Lon: -158 + 0.097},
			{Lat: 21 + 0.09, Lon: -158 + 0.097},
			{Lat: 21 + 0.09, Lon: -158 - 0.097},
		},
		CoastalRampSlope:        0.004,
		CoastalPlainWidthMeters: 3000,
		InlandSlope:             0.02,
		OffshoreSlope:           0.02,
		Funnels: []terrain.Funnel{{
			Name:          "Harbor",
			Center:        geo.Point{Lat: 21 - 0.09, Lon: -158},
			RadiusMeters:  4000,
			Amplification: 1.6,
		}},
	}
	funneled, err := terrain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sFunnel, err := NewSolver(funneled, testParams())
	if err != nil {
		t.Fatal(err)
	}
	sPlain := newTestSolver(t)
	tr := southTrack(t, 45)
	site := []Site{{Pos: geo.XY{X: 0, Y: -9900}, GroundElevationMeters: 0}}
	inFunnel := sFunnel.Inundation(tr, site)[0]
	outside := sPlain.Inundation(tr, site)[0]
	if inFunnel <= outside {
		t.Errorf("funnel surge %v should exceed plain surge %v", inFunnel, outside)
	}
}

func TestStrongerStormMoreSurge(t *testing.T) {
	s := newTestSolver(t)
	mkTrack := func(pc float64) *wind.Track {
		tr, err := wind.NewTrack([]wind.TrackPoint{
			{Offset: 0, Center: geo.Point{Lat: 20.5, Lon: -156.5}, CentralPressureHPa: pc, RMaxMeters: 40000, HollandB: 1.6},
			{Offset: 24 * time.Hour, Center: geo.Point{Lat: 20.5, Lon: -159.5}, CentralPressureHPa: pc, RMaxMeters: 40000, HollandB: 1.6},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	site := []Site{{Pos: geo.XY{X: 0, Y: -9900}, GroundElevationMeters: 0}}
	weak := s.Inundation(mkTrack(990), site)[0]
	strong := s.Inundation(mkTrack(950), site)[0]
	if strong <= weak {
		t.Errorf("950 hPa surge %v should exceed 990 hPa surge %v", strong, weak)
	}
}

func TestMaxCoastalElevation(t *testing.T) {
	s := newTestSolver(t)
	tr := southTrack(t, 45)
	maxEta, at := s.MaxCoastalElevation(tr)
	if maxEta <= 0 {
		t.Fatalf("max coastal elevation = %v, want > 0", maxEta)
	}
	// The maximum must be on the south half of the island.
	if at.Y > 0 {
		t.Errorf("max surge at %v, want south shore (y < 0)", at)
	}
	// And must equal the max over SegmentPeaks.
	peaks := s.SegmentPeaks(tr)
	var want float64
	for _, p := range peaks {
		want = math.Max(want, p)
	}
	if math.Abs(maxEta-want) > 1e-12 {
		t.Errorf("MaxCoastalElevation = %v, max(SegmentPeaks) = %v", maxEta, want)
	}
}

func TestField(t *testing.T) {
	s := newTestSolver(t)
	tr := southTrack(t, 45)
	points := []geo.XY{
		{X: 0, Y: -12000}, // offshore south
		{X: 0, Y: -9900},  // land near south shore
		{X: 0, Y: 0},      // island center
	}
	field := s.Field(tr, points)
	if len(field) != 3 {
		t.Fatalf("field length = %d", len(field))
	}
	if field[0] <= 0 {
		t.Errorf("offshore south field = %v, want > 0", field[0])
	}
	if field[1] >= field[0] {
		t.Errorf("land field %v should be attenuated below coastal %v", field[1], field[0])
	}
	if field[2] >= field[1] {
		t.Errorf("island-center field %v should be below near-shore %v", field[2], field[1])
	}
	if got := s.Field(tr, nil); got != nil {
		t.Error("empty points should return nil")
	}
}

func TestParamsAccessor(t *testing.T) {
	s := newTestSolver(t)
	if got := s.Params().FetchMeters; got != testParams().FetchMeters {
		t.Errorf("Params().FetchMeters = %v", got)
	}
}

func TestRegionPeak(t *testing.T) {
	s := newTestSolver(t)
	tr := southTrack(t, 45)
	// Region on the south shore: positive peak, between min and max of
	// segment peaks.
	south := s.RegionPeak(tr, geo.XY{X: 0, Y: -10007}, 5000)
	if south <= 0 {
		t.Fatalf("south region peak = %v, want > 0", south)
	}
	maxEta, _ := s.MaxCoastalElevation(tr)
	if south > maxEta {
		t.Errorf("region average %v exceeds max segment peak %v", south, maxEta)
	}
	// The north region sees less water than the south for a southern
	// track.
	north := s.RegionPeak(tr, geo.XY{X: 0, Y: 10007}, 5000)
	if north >= south {
		t.Errorf("north region peak %v should be below south %v", north, south)
	}
	// A region with no segments in radius falls back to the nearest
	// segment rather than returning zero.
	far := s.RegionPeak(tr, geo.XY{X: 0, Y: -60000}, 100)
	if far <= 0 {
		t.Errorf("fallback region peak = %v, want > 0", far)
	}
}

func TestValidateWaveAndShieldingBounds(t *testing.T) {
	p := DefaultParams()
	p.ShieldingStrength = 1.5
	if err := p.Validate(); err == nil {
		t.Error("shielding > 1 should be rejected")
	}
	p = DefaultParams()
	p.ShieldingRangeMeters = 0
	if err := p.Validate(); err == nil {
		t.Error("zero shielding range should be rejected")
	}
	p = DefaultParams()
	p.WaveSetupCoeff = -1
	if err := p.Validate(); err == nil {
		t.Error("negative wave coefficient should be rejected")
	}
	p = DefaultParams()
	p.WaveDecayMeters = 0
	if err := p.Validate(); err == nil {
		t.Error("zero wave decay should be rejected")
	}
	// Waves can be disabled entirely.
	p = DefaultParams()
	p.WaveSetupCoeff = 0
	if err := p.Validate(); err != nil {
		t.Errorf("zero wave coefficient should be allowed: %v", err)
	}
	if _, err := NewSolver(testIsland(t), p); err != nil {
		t.Errorf("solver without waves: %v", err)
	}
}
