// Package surge computes hurricane storm-surge inundation along the
// coastline, standing in for the paper's ADCIRC wave-surge simulation.
//
// The water-surface elevation at a stretch of coast is modeled as the
// sum of the inverse-barometer pressure setup and the wind setup (wind
// stress integrated over the nearshore fetch, inversely proportional to
// the local offshore depth — shallow shelves amplify surge), scaled by
// any harbor funnel amplification. Peak elevations are taken over the
// storm track, then — following the paper's treatment of its coarse
// shoreline mesh — elevations from nearby shoreline points are
// *averaged* and *extended onto the shore* with an exponential inland
// decay to produce inundation depths at specific sites.
package surge

import (
	"errors"
	"fmt"
	"math"
	"time"

	"compoundthreat/internal/geo"
	"compoundthreat/internal/terrain"
	"compoundthreat/internal/wind"
)

// Physical constants for the wind-setup term.
const (
	airDensity                = 1.15   // kg/m^3
	waterDensity              = 1000.0 // kg/m^3
	gravity                   = 9.81   // m/s^2
	dragCoeff                 = 0.0025 // surface drag coefficient
	pressureSetupMetersPerHPa = 0.01   // inverse barometer: ~1 cm per hPa
)

// Params tunes the surge model.
type Params struct {
	// FetchMeters is the effective nearshore fetch over which wind
	// stress piles water against the coast.
	FetchMeters float64
	// InlandDecayMeters is the e-folding distance of surge extension
	// onto land.
	InlandDecayMeters float64
	// AveragingRadiusMeters selects the shoreline points whose peak
	// elevations are averaged when evaluating a site (the paper's
	// shoreline-averaging step).
	AveragingRadiusMeters float64
	// MaxSegmentMeters is the shoreline discretization length.
	MaxSegmentMeters float64
	// StepInterval is the time step used to scan the track for peaks.
	StepInterval time.Duration
	// MinOffshoreDepthMeters floors the depth used in the wind-setup
	// denominator so shallow shelves amplify but never blow up.
	MinOffshoreDepthMeters float64
	// ShieldingStrength is how strongly intervening land attenuates the
	// wind reaching a lee shore (0 = no shielding, 1 = full blocking of
	// fully land-crossed fetch). Island shielding is what protects
	// leeward coasts (e.g. Oahu's west shore) from a storm on the far
	// side of the island.
	ShieldingStrength float64
	// ShieldingRangeMeters is the upwind distance scanned for land when
	// computing shielding.
	ShieldingRangeMeters float64
	// WaveSetupCoeff converts squared maximum storm wind (m^2/s^2) to
	// wave setup (m) on shores that face the storm. Swell radiates from
	// the storm core, so only storm-facing, unshielded shores receive
	// it — this is what concentrates flooding on the storm side of an
	// island.
	WaveSetupCoeff float64
	// WaveDecayMeters is the e-folding distance of wave setup beyond
	// the radius of maximum winds.
	WaveDecayMeters float64
}

// DefaultParams returns the calibrated parameters used by the Oahu case
// study.
func DefaultParams() Params {
	return Params{
		FetchMeters:            30000,
		InlandDecayMeters:      4000,
		AveragingRadiusMeters:  4000,
		MaxSegmentMeters:       1500,
		StepInterval:           15 * time.Minute,
		MinOffshoreDepthMeters: 5,
		ShieldingStrength:      0.85,
		ShieldingRangeMeters:   20000,
		WaveSetupCoeff:         5e-4,
		WaveDecayMeters:        150000,
	}
}

// Validate reports the first parameter problem found.
func (p Params) Validate() error {
	switch {
	case p.FetchMeters <= 0:
		return errors.New("surge: FetchMeters must be positive")
	case p.InlandDecayMeters <= 0:
		return errors.New("surge: InlandDecayMeters must be positive")
	case p.AveragingRadiusMeters <= 0:
		return errors.New("surge: AveragingRadiusMeters must be positive")
	case p.MaxSegmentMeters <= 0:
		return errors.New("surge: MaxSegmentMeters must be positive")
	case p.StepInterval <= 0:
		return errors.New("surge: StepInterval must be positive")
	case p.MinOffshoreDepthMeters <= 0:
		return errors.New("surge: MinOffshoreDepthMeters must be positive")
	case p.ShieldingStrength < 0 || p.ShieldingStrength > 1:
		return errors.New("surge: ShieldingStrength must be in [0, 1]")
	case p.ShieldingRangeMeters <= 0:
		return errors.New("surge: ShieldingRangeMeters must be positive")
	case p.WaveSetupCoeff < 0:
		return errors.New("surge: WaveSetupCoeff must be non-negative")
	case p.WaveDecayMeters <= 0:
		return errors.New("surge: WaveDecayMeters must be positive")
	}
	return nil
}

// Solver evaluates storm surge for one terrain model. It is immutable
// after construction and safe for concurrent use.
type Solver struct {
	tm       *terrain.Model
	params   Params
	segments []terrain.ShoreSegment
	// segGeo caches the geodetic midpoint of each segment for wind
	// sampling.
	segGeo []geo.Point
	// shielding[i][b] is the wind attenuation factor at segment i for
	// wind arriving from bearing bin b (precomputed land-crossing scan).
	shielding [][]float64
	// grid indexes segment midpoints for radius and nearest-segment
	// queries (segmentsNear, RegionPeak, Field, batch compilation).
	grid *segmentGrid
}

// shieldingBins is the angular resolution of the shielding table.
const shieldingBins = 36

// NewSolver builds a solver for the terrain model.
func NewSolver(tm *terrain.Model, params Params) (*Solver, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	segs, err := tm.ShoreSegments(params.MaxSegmentMeters)
	if err != nil {
		return nil, fmt.Errorf("surge: shore segments: %w", err)
	}
	if len(segs) == 0 {
		return nil, errors.New("surge: terrain has no shoreline")
	}
	s := &Solver{tm: tm, params: params, segments: segs}
	proj := tm.Projection()
	s.segGeo = make([]geo.Point, len(segs))
	mids := make([]geo.XY, len(segs))
	for i, seg := range segs {
		s.segGeo[i] = proj.ToPoint(seg.Mid)
		mids[i] = seg.Mid
	}
	// Cell size on the order of the segment spacing keeps cells at a
	// few segments each; the floor bounds the cell count for very fine
	// discretizations of large domains.
	s.grid = newSegmentGrid(mids, math.Max(2*params.MaxSegmentMeters, 500))
	s.buildShieldingTable()
	return s, nil
}

// buildShieldingTable scans upwind from every segment in shieldingBins
// directions and records the land fraction along each ray as a wind
// attenuation factor.
func (s *Solver) buildShieldingTable() {
	const raySamples = 20
	s.shielding = make([][]float64, len(s.segments))
	step := s.params.ShieldingRangeMeters / raySamples
	for i, seg := range s.segments {
		row := make([]float64, shieldingBins)
		for b := 0; b < shieldingBins; b++ {
			theta := (float64(b) + 0.5) * 2 * math.Pi / shieldingBins
			dir := geo.XY{X: math.Cos(theta), Y: math.Sin(theta)}
			land := 0
			for k := 1; k <= raySamples; k++ {
				p := seg.Mid.Add(dir.Scale(float64(k) * step))
				if s.tm.IsLand(p) {
					land++
				}
			}
			frac := float64(land) / raySamples
			row[b] = 1 - s.params.ShieldingStrength*frac
		}
		s.shielding[i] = row
	}
}

// shieldingAt returns the wind attenuation at segment i for wind whose
// source lies toward the planar direction (dx, dy) from the segment.
func (s *Solver) shieldingAt(i int, dx, dy float64) float64 {
	theta := math.Atan2(dy, dx)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	b := int(theta / (2 * math.Pi) * shieldingBins)
	if b >= shieldingBins {
		b = shieldingBins - 1
	}
	return s.shielding[i][b]
}

// NumSegments returns the shoreline discretization size.
func (s *Solver) NumSegments() int { return len(s.segments) }

// Params returns the solver parameters.
func (s *Solver) Params() Params { return s.params }

// stepSetup carries the per-time-step constants shared by every
// segment's setup evaluation at one instant: the frozen wind-field
// sampler, the storm center in the solver's planar frame, and the
// per-state wave-setup inputs. The batch evaluator builds one per
// track step and reuses it across the whole segment union; the
// per-call setupAt wrapper builds one per evaluation, matching the
// historical slow path.
type stepSetup struct {
	sampler wind.Sampler
	stormXY geo.XY  // storm center in the solver's planar frame
	vmax    float64 // maximum sustained surface wind
	rmax    float64 // radius of maximum winds
}

// newStepSetup freezes the per-step constants for storm state st.
func (s *Solver) newStepSetup(st wind.State) stepSetup {
	return stepSetup{
		sampler: st.Sampler(),
		stormXY: s.tm.Projection().ToXY(st.Center),
		vmax:    st.MaxSurfaceWindMS(),
		rmax:    st.RMaxMeters,
	}
}

// setupAt returns the instantaneous water-surface elevation at segment
// i for storm state st.
func (s *Solver) setupAt(i int, st wind.State) float64 {
	ss := s.newStepSetup(st)
	return s.setupAtStep(i, &ss)
}

// setupAtStep is setupAt against precomputed per-step constants; the
// two are bit-identical for the same storm state.
func (s *Solver) setupAtStep(i int, ss *stepSetup) float64 {
	seg := s.segments[i]
	sample := ss.sampler.SampleAt(s.segGeo[i])

	// Inverse-barometer pressure setup.
	eta := (wind.AmbientPressureHPa - sample.PressureHPa) * pressureSetupMetersPerHPa

	// Wind setup: only the onshore component of the wind stress piles
	// water against this stretch of coast. Onshore means blowing
	// opposite to the outward normal.
	onshore := -(sample.DirEast*seg.Normal.X + sample.DirNorth*seg.Normal.Y)
	if onshore > 0 {
		// Island shielding: wind that crossed land upwind is attenuated.
		speed := sample.SpeedMS * s.shieldingAt(i, -sample.DirEast, -sample.DirNorth)
		depth := math.Max(seg.OffshoreDepthMeters, s.params.MinOffshoreDepthMeters)
		stress := airDensity * dragCoeff * speed * speed
		eta += stress * onshore * s.params.FetchMeters / (waterDensity * gravity * depth)
	}

	eta += s.waveSetupAtStep(i, ss)

	return eta * seg.Amplification
}

// waveSetupAtStep returns the swell-driven setup at segment i: swell
// radiates from the storm core, decays with distance beyond the radius
// of maximum winds, reaches only shores that face the storm, and is
// blocked by intervening land.
func (s *Solver) waveSetupAtStep(i int, ss *stepSetup) float64 {
	if s.params.WaveSetupCoeff == 0 {
		return 0
	}
	seg := s.segments[i]
	toStorm := ss.stormXY.Sub(seg.Mid)
	dist := toStorm.Norm()
	if dist == 0 {
		return 0
	}
	u := toStorm.Scale(1 / dist)
	facing := u.Dot(seg.Normal)
	if facing <= 0 {
		return 0 // shore faces away from the storm
	}
	excess := dist - ss.rmax
	if excess < 0 {
		excess = 0
	}
	shield := s.shieldingAt(i, u.X, u.Y)
	return s.params.WaveSetupCoeff * ss.vmax * ss.vmax * facing * shield *
		math.Exp(-excess/s.params.WaveDecayMeters)
}

// SegmentPeaks returns the peak water-surface elevation (meters above
// mean sea level) at every shoreline segment over the whole track.
func (s *Solver) SegmentPeaks(tr *wind.Track) []float64 {
	peaks := make([]float64, len(s.segments))
	s.scanTrack(tr, func(st wind.State) {
		for i := range s.segments {
			if eta := s.setupAt(i, st); eta > peaks[i] {
				peaks[i] = eta
			}
		}
	})
	return peaks
}

// scanTrack invokes fn at every time step across the track.
func (s *Solver) scanTrack(tr *wind.Track, fn func(wind.State)) {
	start := tr.Start()
	end := start + tr.Duration()
	for t := start; t <= end; t += s.params.StepInterval {
		fn(tr.At(t))
	}
}

// Site is a location whose inundation is evaluated against the track.
type Site struct {
	// Pos is the site position in the terrain's planar frame.
	Pos geo.XY
	// GroundElevationMeters is the surveyed site ground elevation above
	// mean sea level.
	GroundElevationMeters float64
}

// Inundation returns the peak inundation depth (meters of water above
// ground, >= 0) at each site for the given track.
//
// The evaluation mirrors the paper's method: peak coastal water-surface
// elevations near the site are averaged over the averaging radius, the
// averaged elevation is extended onto the shore with an exponential
// inland decay, and the site's ground elevation is subtracted.
func (s *Solver) Inundation(tr *wind.Track, sites []Site) []float64 {
	if len(sites) == 0 {
		return nil
	}
	// Resolve each site's nearby shoreline segments once.
	nearby := make([][]int, len(sites))
	for j, site := range sites {
		nearby[j] = s.segmentsNear(site.Pos)
	}

	// Track the peak *average* coastal elevation per site over time.
	// Averaging each step (rather than averaging per-segment peaks)
	// matches a water surface observed at one instant.
	peakAvg := make([]float64, len(sites))
	s.scanTrack(tr, func(st wind.State) {
		for j := range sites {
			var sum float64
			for _, i := range nearby[j] {
				sum += s.setupAt(i, st)
			}
			if avg := sum / float64(len(nearby[j])); avg > peakAvg[j] {
				peakAvg[j] = avg
			}
		}
	})

	out := make([]float64, len(sites))
	for j, site := range sites {
		d := s.tm.DistanceToCoast(site.Pos)
		if !s.tm.IsLand(site.Pos) {
			d = 0 // site on the waterline (e.g. harbor-side plant)
		}
		eta := peakAvg[j] * math.Exp(-d/s.params.InlandDecayMeters)
		depth := eta - site.GroundElevationMeters
		if depth < 0 {
			depth = 0
		}
		out[j] = depth
	}
	return out
}

// regionSegments appends the ascending-ordered indices of the segments
// within radius of center to dst, falling back to the single nearest
// segment when the disk is empty, and returns the extended slice. This
// is the one place averaging regions are resolved, so sites, zones, and
// the batch evaluator all agree on membership and order.
func (s *Solver) regionSegments(dst []int32, center geo.XY, radius float64) []int32 {
	base := len(dst)
	dst = s.grid.appendWithin(dst, center, radius)
	if len(dst) == base {
		dst = append(dst, int32(s.grid.nearest(center)))
	}
	return dst
}

// segmentsNear returns the indices of the shoreline segments within the
// averaging radius of p, falling back to the single nearest segment if
// none are within the radius.
func (s *Solver) segmentsNear(p geo.XY) []int {
	within := s.regionSegments(nil, p, s.params.AveragingRadiusMeters)
	out := make([]int, len(within))
	for k, i := range within {
		out[k] = int(i)
	}
	return out
}

// RegionPeak returns the peak (over the track) of the average
// water-surface elevation across all shoreline segments within radius
// of center — the common water surface of an inundation zone. If no
// segment lies within the radius, the nearest segment is used.
func (s *Solver) RegionPeak(tr *wind.Track, center geo.XY, radius float64) float64 {
	idx := s.regionSegments(nil, center, radius)
	var peak float64
	s.scanTrack(tr, func(st wind.State) {
		var sum float64
		for _, i := range idx {
			sum += s.setupAt(int(i), st)
		}
		if avg := sum / float64(len(idx)); avg > peak {
			peak = avg
		}
	})
	return peak
}

// Field evaluates the peak water-surface elevation at arbitrary planar
// points for the track: each point takes the peak elevation of its
// nearest shoreline segment, attenuated by the inland decay for land
// points. It is the whole-domain view used for inundation maps; the
// per-site analysis path uses Inundation instead.
func (s *Solver) Field(tr *wind.Track, points []geo.XY) []float64 {
	if len(points) == 0 {
		return nil
	}
	peaks := s.SegmentPeaks(tr)
	out := make([]float64, len(points))
	for i, p := range points {
		eta := peaks[s.grid.nearest(p)]
		if s.tm.IsLand(p) {
			eta *= math.Exp(-s.tm.DistanceToCoast(p) / s.params.InlandDecayMeters)
		}
		out[i] = eta
	}
	return out
}

// MaxCoastalElevation returns the highest peak water-surface elevation
// along the whole coastline for the track, together with the planar
// position of the segment where it occurs.
func (s *Solver) MaxCoastalElevation(tr *wind.Track) (float64, geo.XY) {
	peaks := s.SegmentPeaks(tr)
	best, bestAt := math.Inf(-1), geo.XY{}
	for i, eta := range peaks {
		if eta > best {
			best, bestAt = eta, s.segments[i].Mid
		}
	}
	return best, bestAt
}
