package surge

import (
	"testing"
	"time"

	"compoundthreat/internal/geo"
	"compoundthreat/internal/terrain"
	"compoundthreat/internal/wind"
)

func benchSolver(b *testing.B) *Solver {
	b.Helper()
	s, err := NewSolver(terrain.NewOahu(), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkSolverConstruction(b *testing.B) {
	tm := terrain.NewOahu()
	for i := 0; i < b.N; i++ {
		if _, err := NewSolver(tm, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentPeaks(b *testing.B) {
	s := benchSolver(b)
	tr := oahuBenchTrack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SegmentPeaks(tr)
	}
}

func BenchmarkInundationTenSites(b *testing.B) {
	s := benchSolver(b)
	tr := oahuBenchTrack(b)
	tm := terrain.NewOahu()
	proj := tm.Projection()
	var sites []Site
	for i := 0; i < 10; i++ {
		sites = append(sites, Site{
			Pos:                   proj.ToXY(geo.Point{Lat: 21.30 + float64(i)*0.01, Lon: -157.9}),
			GroundElevationMeters: 1,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Inundation(tr, sites)
	}
}

func BenchmarkRegionPeak(b *testing.B) {
	s := benchSolver(b)
	tr := oahuBenchTrack(b)
	tm := terrain.NewOahu()
	center := tm.Projection().ToXY(geo.Point{Lat: 21.33, Lon: -157.92})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RegionPeak(tr, center, 12000)
	}
}

func oahuBenchTrack(b *testing.B) *wind.Track {
	b.Helper()
	tr, err := wind.NewTrack([]wind.TrackPoint{
		{Offset: 0, Center: geo.Point{Lat: 20.3, Lon: -157.3}, CentralPressureHPa: 955, RMaxMeters: 40000, HollandB: 1.6},
		{Offset: 30 * time.Hour, Center: geo.Point{Lat: 21.4, Lon: -159.5}, CentralPressureHPa: 955, RMaxMeters: 40000, HollandB: 1.6},
	})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}
