// Package store is the content-addressed persistent object store
// behind the serving tier's write path: uploaded scenario topologies
// and the ensembles generated from them survive worker restarts here.
//
// Objects are grouped into kinds (one directory per kind) and keyed by
// a 16-hex-digit FNV-1a id; for scenario documents the id IS the
// content fingerprint (ContentID of the canonical document bytes), so
// identical uploads land on identical keys and re-uploads are free.
// Each file carries a checksummed envelope and is committed with the
// classic crash-safe sequence — write to a temp file, fsync, rename
// into place, fsync the directory — so a kill -9 at any point leaves
// either the old state or the new state, never a torn entry. Open
// rebuilds the index by scanning the tree, deleting orphaned temp
// files and any entry whose checksum does not match (which can only
// appear through outside interference, not through a crash).
//
// Retention is bounded: when an insert pushes the store past its entry
// or byte budget, the oldest entries (insertion order, rebuilt from
// file modification times on Open) are deleted until it fits. See
// docs/STORAGE.md for the on-disk layout and the serving-tier
// semantics built on top.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Options tunes a store. The zero value uses the documented defaults.
type Options struct {
	// MaxEntries bounds stored objects across all kinds; the oldest are
	// evicted first. 0 = 4096.
	MaxEntries int
	// MaxBytes bounds total payload bytes across all kinds. 0 = 1 GiB.
	MaxBytes int64
}

func (o Options) defaults() Options {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 4096
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1 << 30
	}
	return o
}

// Entry describes one stored object.
type Entry struct {
	Kind string
	ID   string
	// Bytes is the payload size (envelope overhead excluded).
	Bytes int64
	// ModTime is when the entry was committed.
	ModTime time.Time
}

// entry is the in-memory index record.
type entry struct {
	Entry
	seq int64 // insertion order; eviction removes the lowest first
}

// Store is a content-addressed object store rooted at one directory.
// It is safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu      chan struct{} // 1-slot semaphore: lock ordering is trivial and profilable
	entries map[string]*entry
	bytes   int64
	seq     int64
}

// envelopeMagic heads every stored file: format name and version.
const envelopeMagic = "threatstore1"

// fnv64Offset / fnv64Prime are the FNV-1a 64-bit parameters — the same
// hash family the serving tier fingerprints ensembles with.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// ContentID fingerprints payload bytes as a 16-hex-digit FNV-1a hash —
// the id under which content-addressed documents are stored.
func ContentID(data []byte) string {
	h := uint64(fnv64Offset)
	for _, b := range data {
		h = (h ^ uint64(b)) * fnv64Prime
	}
	return fmt.Sprintf("%016x", h)
}

// Open opens (creating if needed) the store rooted at dir and rebuilds
// the index from disk: orphaned temp files from interrupted writes are
// deleted, and entries whose envelope fails its checksum are dropped
// and removed. Returns the store and the number of invalid files
// cleaned up.
func Open(dir string, opt Options) (*Store, int, error) {
	opt = opt.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		opt:     opt,
		mu:      make(chan struct{}, 1),
		entries: make(map[string]*entry),
	}
	cleaned := 0
	kinds, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	var scanned []*entry
	for _, kd := range kinds {
		if !kd.IsDir() {
			continue
		}
		kind := kd.Name()
		files, err := os.ReadDir(filepath.Join(dir, kind))
		if err != nil {
			return nil, 0, fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(dir, kind, f.Name())
			if strings.HasSuffix(f.Name(), ".tmp") {
				// An interrupted Put: the rename never happened, so the
				// committed state never referenced this file.
				os.Remove(path)
				cleaned++
				continue
			}
			id, ok := strings.CutSuffix(f.Name(), ".json")
			if !ok {
				continue // not ours; leave it alone
			}
			payload, err := readEnvelope(path)
			if err != nil {
				os.Remove(path)
				cleaned++
				continue
			}
			info, err := f.Info()
			if err != nil {
				return nil, 0, fmt.Errorf("store: %w", err)
			}
			scanned = append(scanned, &entry{Entry: Entry{
				Kind:    kind,
				ID:      id,
				Bytes:   int64(len(payload)),
				ModTime: info.ModTime(),
			}})
		}
	}
	// Insertion order rebuilt from mtimes (name-tiebreak for equal
	// stamps) so retention keeps evicting oldest-first across restarts.
	sort.Slice(scanned, func(i, j int) bool {
		if !scanned[i].ModTime.Equal(scanned[j].ModTime) {
			return scanned[i].ModTime.Before(scanned[j].ModTime)
		}
		return scanned[i].Kind+"/"+scanned[i].ID < scanned[j].Kind+"/"+scanned[j].ID
	})
	for _, e := range scanned {
		s.seq++
		e.seq = s.seq
		s.entries[e.Kind+"/"+e.ID] = e
		s.bytes += e.Bytes
	}
	return s, cleaned, nil
}

func (s *Store) lock()   { s.mu <- struct{}{} }
func (s *Store) unlock() { <-s.mu }

// validName accepts kind and id components: non-empty, path-safe.
func validName(part string) bool {
	if part == "" || len(part) > 128 {
		return false
	}
	for i := 0; i < len(part); i++ {
		c := part[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func (s *Store) path(kind, id string) string {
	return filepath.Join(s.dir, kind, id+".json")
}

// Put commits one object. It is idempotent on (kind, id): a second Put
// of an existing key reports added=false without touching disk (ids in
// this store are content-derived, so equal keys mean equal content).
// The commit is crash-safe — temp write, fsync, rename, directory
// fsync — and may evict the oldest entries to stay within the
// configured budgets; the freshly written object is never evicted by
// its own Put.
func (s *Store) Put(kind, id string, data []byte) (added bool, err error) {
	if !validName(kind) || !validName(id) {
		return false, fmt.Errorf("store: invalid key %q/%q", kind, id)
	}
	s.lock()
	defer s.unlock()
	key := kind + "/" + id
	if _, ok := s.entries[key]; ok {
		return false, nil
	}
	kdir := filepath.Join(s.dir, kind)
	if err := os.MkdirAll(kdir, 0o755); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(kdir, id+".*.tmp")
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	header := fmt.Sprintf("%s %s %d\n", envelopeMagic, ContentID(data), len(data))
	if _, err := tmp.WriteString(header); err == nil {
		_, err = tmp.Write(data)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return false, fmt.Errorf("store: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(kind, id)); err != nil {
		return false, fmt.Errorf("store: commit %s: %w", key, err)
	}
	if err := syncDir(kdir); err != nil {
		return false, fmt.Errorf("store: commit %s: %w", key, err)
	}
	s.seq++
	s.entries[key] = &entry{
		Entry: Entry{Kind: kind, ID: id, Bytes: int64(len(data)), ModTime: time.Now()},
		seq:   s.seq,
	}
	s.bytes += int64(len(data))
	s.gcLocked(key)
	return true, nil
}

// gcLocked evicts oldest-first until the store fits its budgets,
// sparing the key that triggered the sweep.
func (s *Store) gcLocked(spare string) {
	for len(s.entries) > s.opt.MaxEntries || s.bytes > s.opt.MaxBytes {
		var victim *entry
		var victimKey string
		for key, e := range s.entries {
			if key == spare {
				continue
			}
			if victim == nil || e.seq < victim.seq {
				victim, victimKey = e, key
			}
		}
		if victim == nil {
			return // only the spared entry remains; nothing evictable
		}
		os.Remove(s.path(victim.Kind, victim.ID))
		delete(s.entries, victimKey)
		s.bytes -= victim.Bytes
	}
}

// Get returns the payload of one object, verifying its envelope
// checksum. A checksum mismatch (outside interference with the file)
// is an error and the entry is dropped.
func (s *Store) Get(kind, id string) ([]byte, error) {
	s.lock()
	defer s.unlock()
	key := kind + "/" + id
	e, ok := s.entries[key]
	if !ok {
		return nil, fmt.Errorf("store: %w: %s", ErrNotFound, key)
	}
	payload, err := readEnvelope(s.path(kind, id))
	if err != nil {
		os.Remove(s.path(kind, id))
		delete(s.entries, key)
		s.bytes -= e.Bytes
		return nil, fmt.Errorf("store: %s: %w", key, err)
	}
	return payload, nil
}

// ErrNotFound reports a missing (kind, id).
var ErrNotFound = errors.New("object not found")

// Has reports whether (kind, id) is stored.
func (s *Store) Has(kind, id string) bool {
	s.lock()
	defer s.unlock()
	_, ok := s.entries[kind+"/"+id]
	return ok
}

// Delete removes one object. Deleting a missing key is a no-op.
func (s *Store) Delete(kind, id string) error {
	s.lock()
	defer s.unlock()
	key := kind + "/" + id
	e, ok := s.entries[key]
	if !ok {
		return nil
	}
	if err := os.Remove(s.path(kind, id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	delete(s.entries, key)
	s.bytes -= e.Bytes
	return nil
}

// List returns the entries of one kind, sorted by id.
func (s *Store) List(kind string) []Entry {
	s.lock()
	defer s.unlock()
	var out []Entry
	for _, e := range s.entries {
		if e.Kind == kind {
			out = append(out, e.Entry)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of stored objects across all kinds.
func (s *Store) Len() int {
	s.lock()
	defer s.unlock()
	return len(s.entries)
}

// Bytes returns the total payload bytes across all kinds.
func (s *Store) Bytes() int64 {
	s.lock()
	defer s.unlock()
	return s.bytes
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// readEnvelope reads one committed file and verifies its header:
// magic, payload checksum, payload length.
func readEnvelope(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	head, payload, ok := bytes.Cut(raw, []byte{'\n'})
	if !ok {
		return nil, errors.New("truncated envelope")
	}
	fields := strings.Fields(string(head))
	if len(fields) != 3 || fields[0] != envelopeMagic {
		return nil, errors.New("bad envelope header")
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil || n != len(payload) {
		return nil, errors.New("envelope length mismatch")
	}
	if ContentID(payload) != fields[1] {
		return nil, errors.New("envelope checksum mismatch")
	}
	return payload, nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Filesystems that reject directory fsync (some network mounts)
// degrade to rename-only atomicity rather than failing the Put.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync failures are tolerated (some filesystems reject
	// it); the entry then has rename-only atomicity, which still rules
	// out torn files.
	_ = d.Sync()
	return nil
}
