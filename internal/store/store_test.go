package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opt Options) (*Store, int) {
	t.Helper()
	s, cleaned, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, cleaned
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	data := []byte(`{"hello":"world"}`)
	id := ContentID(data)
	added, err := s.Put("topology", id, data)
	if err != nil || !added {
		t.Fatalf("Put: added=%v err=%v", added, err)
	}
	got, err := s.Get("topology", id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	if !s.Has("topology", id) {
		t.Fatal("Has = false after Put")
	}
	if s.Len() != 1 || s.Bytes() != int64(len(data)) {
		t.Fatalf("Len=%d Bytes=%d, want 1/%d", s.Len(), s.Bytes(), len(data))
	}
}

func TestPutIdempotent(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	data := []byte("payload")
	if added, err := s.Put("topology", "aaaa", data); err != nil || !added {
		t.Fatalf("first Put: added=%v err=%v", added, err)
	}
	if added, err := s.Put("topology", "aaaa", data); err != nil || added {
		t.Fatalf("second Put: added=%v err=%v, want false/nil", added, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestPutRejectsInvalidKeys(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	for _, bad := range [][2]string{
		{"", "id"}, {"kind", ""}, {"../etc", "id"}, {"kind", "a/b"},
		{"kind", "UPPER"}, {"kind", "dot."},
	} {
		if _, err := s.Put(bad[0], bad[1], []byte("x")); err == nil {
			t.Errorf("Put(%q, %q) accepted, want error", bad[0], bad[1])
		}
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	if _, err := s.Get("topology", "ffff"); err == nil {
		t.Fatal("Get of missing key succeeded")
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	blobs := map[string][]byte{}
	for i := 0; i < 5; i++ {
		data := []byte(fmt.Sprintf(`{"n":%d}`, i))
		id := ContentID(data)
		blobs[id] = data
		if _, err := s.Put("ensemble", id, data); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	s2, cleaned := mustOpen(t, dir, Options{})
	if cleaned != 0 {
		t.Fatalf("cleaned = %d, want 0", cleaned)
	}
	if s2.Len() != 5 {
		t.Fatalf("Len after reopen = %d, want 5", s2.Len())
	}
	for id, data := range blobs {
		got, err := s2.Get("ensemble", id)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("Get(%s) after reopen: %q, %v", id, got, err)
		}
	}
}

func TestOpenCleansOrphanTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if _, err := s.Put("topology", "aaaa", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Put: a stray temp file next to a committed one.
	orphan := filepath.Join(dir, "topology", "bbbb.123.tmp")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, cleaned := mustOpen(t, dir, Options{})
	if cleaned != 1 {
		t.Fatalf("cleaned = %d, want 1", cleaned)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan temp file survived Open")
	}
	if s2.Len() != 1 || !s2.Has("topology", "aaaa") {
		t.Fatal("committed entry lost during cleanup")
	}
}

func TestOpenDropsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if _, err := s.Put("topology", "aaaa", []byte("good")); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "topology", "bbbb.json")
	if err := os.WriteFile(bad, []byte("threatstore1 0000000000000000 4\nevil"), 0o644); err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "topology", "cccc.json")
	if err := os.WriteFile(trunc, []byte("no newline at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, cleaned := mustOpen(t, dir, Options{})
	if cleaned != 2 {
		t.Fatalf("cleaned = %d, want 2", cleaned)
	}
	if s2.Len() != 1 || !s2.Has("topology", "aaaa") {
		t.Fatal("good entry lost while dropping corrupt ones")
	}
	for _, p := range []string{bad, trunc} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("corrupt file %s survived Open", p)
		}
	}
}

func TestGetDropsTamperedEntry(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	data := []byte("original")
	if _, err := s.Put("topology", "aaaa", data); err != nil {
		t.Fatal(err)
	}
	// Tamper with the committed file behind the store's back.
	path := filepath.Join(dir, "topology", "aaaa.json")
	if err := os.WriteFile(path, []byte("threatstore1 ffffffffffffffff 8\ntampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("topology", "aaaa"); err == nil {
		t.Fatal("Get of tampered entry succeeded")
	}
	if s.Has("topology", "aaaa") {
		t.Fatal("tampered entry still indexed after failed Get")
	}
}

func TestGCEvictsByCount(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{MaxEntries: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		data := []byte(fmt.Sprintf("blob-%d", i))
		id := ContentID(data)
		ids = append(ids, id)
		if _, err := s.Put("ensemble", id, data); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, old := range ids[:2] {
		if s.Has("ensemble", old) {
			t.Errorf("oldest entry %s survived count GC", old)
		}
	}
	for _, kept := range ids[2:] {
		if !s.Has("ensemble", kept) {
			t.Errorf("recent entry %s evicted", kept)
		}
	}
}

func TestGCEvictsByBytes(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{MaxBytes: 100})
	big := bytes.Repeat([]byte("x"), 60)
	idA := "aaaaaaaaaaaaaaaa"
	idB := "bbbbbbbbbbbbbbbb"
	if _, err := s.Put("ensemble", idA, big); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("ensemble", idB, big); err != nil {
		t.Fatal(err)
	}
	if s.Has("ensemble", idA) {
		t.Fatal("oldest entry survived byte GC")
	}
	if !s.Has("ensemble", idB) {
		t.Fatal("newest entry evicted by its own Put")
	}
	if s.Bytes() != 60 {
		t.Fatalf("Bytes = %d, want 60", s.Bytes())
	}
}

func TestGCNeverEvictsFreshOversizedPut(t *testing.T) {
	// A single object above MaxBytes still commits; GC spares the
	// triggering key so the write path cannot delete its own result.
	s, _ := mustOpen(t, t.TempDir(), Options{MaxBytes: 10})
	data := bytes.Repeat([]byte("y"), 50)
	if added, err := s.Put("ensemble", "cccccccccccccccc", data); err != nil || !added {
		t.Fatalf("Put: added=%v err=%v", added, err)
	}
	if !s.Has("ensemble", "cccccccccccccccc") {
		t.Fatal("oversized fresh entry evicted by its own Put")
	}
}

func TestDelete(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	data := []byte("gone soon")
	id := ContentID(data)
	if _, err := s.Put("topology", id, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("topology", id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if s.Has("topology", id) || s.Len() != 0 || s.Bytes() != 0 {
		t.Fatal("entry still present after Delete")
	}
	if err := s.Delete("topology", id); err != nil {
		t.Fatalf("Delete of missing key: %v", err)
	}
}

func TestListSortedPerKind(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	for _, id := range []string{"cccc", "aaaa", "bbbb"} {
		if _, err := s.Put("topology", id, []byte(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Put("ensemble", "dddd", []byte("other kind")); err != nil {
		t.Fatal(err)
	}
	got := s.List("topology")
	if len(got) != 3 {
		t.Fatalf("List returned %d entries, want 3", len(got))
	}
	for i, want := range []string{"aaaa", "bbbb", "cccc"} {
		if got[i].ID != want || got[i].Kind != "topology" || got[i].Bytes != 4 {
			t.Fatalf("List[%d] = %+v, want id %s", i, got[i], want)
		}
	}
	if len(s.List("missing")) != 0 {
		t.Fatal("List of unknown kind non-empty")
	}
}

func TestReopenPreservesEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	ids := []string{"aaaa", "bbbb", "cccc"}
	for i, id := range ids {
		if _, err := s.Put("ensemble", id, []byte(id)); err != nil {
			t.Fatal(err)
		}
		// Ensure distinct mtimes even on coarse filesystem clocks.
		past := time.Now().Add(time.Duration(i-10) * time.Second)
		if err := os.Chtimes(filepath.Join(dir, "ensemble", id+".json"), past, past); err != nil {
			t.Fatal(err)
		}
	}
	s2, _ := mustOpen(t, dir, Options{MaxEntries: 2})
	if _, err := s2.Put("ensemble", "dddd", []byte("dddd")); err != nil {
		t.Fatal(err)
	}
	if s2.Has("ensemble", "aaaa") || s2.Has("ensemble", "bbbb") {
		t.Fatal("reopen lost oldest-first eviction order")
	}
	if !s2.Has("ensemble", "cccc") || !s2.Has("ensemble", "dddd") {
		t.Fatal("recent entries evicted after reopen")
	}
}

func TestContentIDStable(t *testing.T) {
	// FNV-1a 64 of "hello" — pins the hash family so store ids stay
	// compatible with the serving tier's fingerprints.
	if got := ContentID([]byte("hello")); got != "a430d84680aabd0b" {
		t.Fatalf("ContentID(hello) = %s, want a430d84680aabd0b", got)
	}
	if got := ContentID(nil); got != fmt.Sprintf("%016x", uint64(fnv64Offset)) {
		t.Fatalf("ContentID(nil) = %s", got)
	}
}
