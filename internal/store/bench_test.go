package store

import (
	"testing"
)

// benchBlob builds a distinct ~64 KiB payload per index — about the
// size of a small uploaded ensemble blob.
func benchBlob(i int) []byte {
	data := make([]byte, 64<<10)
	seed := uint64(i)*0x9e3779b97f4a7c15 + 1
	for j := range data {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		data[j] = byte(seed)
	}
	return data
}

// BenchmarkStorePut measures the full crash-safe commit — temp write,
// fsync, rename, directory fsync — for distinct 64 KiB objects.
func BenchmarkStorePut(b *testing.B) {
	s, _, err := Open(b.TempDir(), Options{MaxEntries: 1 << 20, MaxBytes: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	blobs := make([][]byte, b.N)
	ids := make([]string, b.N)
	for i := range blobs {
		blobs[i] = benchBlob(i)
		ids[i] = ContentID(blobs[i])
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put("ensemble", ids[i], blobs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures checksum-verified reads of 64 KiB objects.
func BenchmarkStoreGet(b *testing.B) {
	s, _, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		blob := benchBlob(i)
		ids[i] = ContentID(blob)
		if _, err := s.Put("ensemble", ids[i], blob); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get("ensemble", ids[i%n]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWarmStart measures Open over a populated directory —
// the index rebuild a restarted worker pays before re-serving uploads.
func BenchmarkStoreWarmStart(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		blob := benchBlob(i)
		if _, err := s.Put("ensemble", ContentID(blob), blob); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, _, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if s2.Len() != n {
			b.Fatalf("warm start indexed %d entries, want %d", s2.Len(), n)
		}
	}
}
