// Package opstate evaluates the operational state of a SCADA
// configuration after a compound failure, implementing Table I of the
// paper with the color-based naming scheme of Babay et al.:
//
//   - Green:  fully operational.
//   - Orange: primary down, cold backup being activated (downtime).
//   - Red:    not operational until repair or attack end.
//   - Gray:   system safety compromised; may behave incorrectly.
//
// [Evaluate] maps a (configuration, [SystemState]) pair — which sites
// are flooded or isolated, which replicas are intruded — to a [State]
// by the architecture-specific rules of Table I: crash-tolerant pairs
// go gray on any intrusion, BFT configurations tolerate f compromised
// replicas among reachable sites, cold backups turn red into orange.
//
// This is the pipeline's keystone: the analysis engine calls it for
// every distinct failure pattern (via [EvaluateUnchecked], the
// validation-free variant on the allocation-free hot path — callers
// must pre-validate the configuration), and the behavioral substrate's
// conformance tests assert that running protocol implementations land
// in the state this package predicts.
package opstate
