package opstate

// Cross-check: the generalized evaluator against direct, literal
// transcriptions of the paper's Table I rows, over every reachable
// system state. A bug in either encoding would surface as a mismatch.

import (
	"testing"

	"compoundthreat/internal/topology"
)

// literalTableI encodes each configuration's Table I row verbatim.
// Intrusion counts refer to compromised servers at functional sites
// (flooded/isolated servers cannot act, per §VI-B).
func literalTableI(name string, st SystemState) State {
	up := func(i int) bool { return st.SiteFunctional(i) }
	intr := func(i int) int {
		if up(i) {
			return st.Intrusions[i]
		}
		return 0
	}
	switch name {
	case "2":
		switch {
		case intr(0) >= 1:
			return Gray
		case up(0):
			return Green
		default:
			return Red
		}
	case "2-2":
		switch {
		case intr(0)+intr(1) >= 1:
			return Gray
		case up(0):
			return Green
		case up(1):
			return Orange
		default:
			return Red
		}
	case "6":
		switch {
		case intr(0) >= 2:
			return Gray
		case up(0):
			return Green
		default:
			return Red
		}
	case "6-6":
		switch {
		case intr(0)+intr(1) >= 2:
			return Gray
		case up(0):
			return Green
		case up(1):
			return Orange
		default:
			return Red
		}
	case "6+6+6":
		total := intr(0) + intr(1) + intr(2)
		sitesUp := 0
		for i := 0; i < 3; i++ {
			if up(i) {
				sitesUp++
			}
		}
		switch {
		case total >= 2:
			return Gray
		case sitesUp >= 2:
			return Green
		default:
			return Red
		}
	}
	return 0
}

// TestGeneralizedEvaluatorMatchesLiteralTableI enumerates every
// combination of flooded/isolated flags and intrusion counts for every
// configuration and compares the generalized evaluator with the
// literal transcription.
func TestGeneralizedEvaluatorMatchesLiteralTableI(t *testing.T) {
	configs, err := topology.StandardConfigs(topology.Placement{
		Primary: "p", Second: "s", DataCenter: "d",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range configs {
		n := len(cfg.Sites)
		// Each site has 4 up/down combinations (flooded x isolated) and
		// intrusion counts 0..3 (capped by replicas).
		var sweep func(i int, st SystemState)
		checked := 0
		sweep = func(i int, st SystemState) {
			if i == n {
				want := literalTableI(cfg.Name, st)
				got, err := Evaluate(cfg, st)
				if err != nil {
					t.Fatalf("%s %+v: %v", cfg.Name, st, err)
				}
				if got != want {
					t.Errorf("%s flooded=%v isolated=%v intrusions=%v: evaluator=%v, literal=%v",
						cfg.Name, st.Flooded, st.Isolated, st.Intrusions, got, want)
				}
				checked++
				return
			}
			for _, flooded := range []bool{false, true} {
				for _, isolated := range []bool{false, true} {
					maxIntr := 3
					if cfg.Sites[i].Replicas < maxIntr {
						maxIntr = cfg.Sites[i].Replicas
					}
					for k := 0; k <= maxIntr; k++ {
						st.Flooded[i] = flooded
						st.Isolated[i] = isolated
						st.Intrusions[i] = k
						sweep(i+1, st)
					}
				}
			}
			st.Flooded[i] = false
			st.Isolated[i] = false
			st.Intrusions[i] = 0
		}
		sweep(0, NewSystemState(n))
		if checked == 0 {
			t.Fatalf("%s: no states checked", cfg.Name)
		}
		t.Logf("%s: %d states cross-checked", cfg.Name, checked)
	}
}
