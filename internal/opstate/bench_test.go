package opstate

import (
	"testing"

	"compoundthreat/internal/topology"
)

func BenchmarkEvaluate(b *testing.B) {
	cfg := topology.NewConfig666("p", "s", "d")
	st := NewSystemState(3)
	st.Flooded[0] = true
	st.Intrusions[1] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(cfg, st); err != nil {
			b.Fatal(err)
		}
	}
}
