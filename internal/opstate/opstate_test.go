package opstate

import (
	"strings"
	"testing"

	"compoundthreat/internal/topology"
)

func c2() topology.Config   { return topology.NewConfig2("p") }
func c22() topology.Config  { return topology.NewConfig22("p", "b") }
func c6() topology.Config   { return topology.NewConfig6("p") }
func c66() topology.Config  { return topology.NewConfig66("p", "b") }
func c666() topology.Config { return topology.NewConfig666("p", "s", "d") }

func eval(t *testing.T, cfg topology.Config, st SystemState) State {
	t.Helper()
	got, err := Evaluate(cfg, st)
	if err != nil {
		t.Fatalf("Evaluate(%s): %v", cfg.Name, err)
	}
	return got
}

// TestTableI exhaustively checks the evaluation rules against the
// literal conditions of Table I in the paper. "down" below means
// flooded or isolated (either mechanism must give the same state).
func TestTableI(t *testing.T) {
	type row struct {
		name string
		cfg  topology.Config
		// down[i]: site i non-functional; intr[i]: intrusions at site i.
		down []bool
		intr []int
		want State
	}
	rows := []row{
		// Configuration "2".
		{"2 up clean", c2(), []bool{false}, []int{0}, Green},
		{"2 down clean", c2(), []bool{true}, []int{0}, Red},
		{"2 up intruded", c2(), []bool{false}, []int{1}, Gray},

		// Configuration "2-2".
		{"2-2 primary up", c22(), []bool{false, false}, []int{0, 0}, Green},
		{"2-2 primary up backup down", c22(), []bool{false, true}, []int{0, 0}, Green},
		{"2-2 primary down backup up", c22(), []bool{true, false}, []int{0, 0}, Orange},
		{"2-2 both down", c22(), []bool{true, true}, []int{0, 0}, Red},
		{"2-2 intrusion in primary", c22(), []bool{false, false}, []int{1, 0}, Gray},
		{"2-2 intrusion in backup", c22(), []bool{false, false}, []int{0, 1}, Gray},
		{"2-2 primary down intrusion in backup", c22(), []bool{true, false}, []int{0, 1}, Gray},

		// Configuration "6": tolerates one intrusion.
		{"6 up clean", c6(), []bool{false}, []int{0}, Green},
		{"6 up one intrusion", c6(), []bool{false}, []int{1}, Green},
		{"6 up two intrusions", c6(), []bool{false}, []int{2}, Gray},
		{"6 down", c6(), []bool{true}, []int{0}, Red},

		// Configuration "6-6".
		{"6-6 primary up one intrusion", c66(), []bool{false, false}, []int{1, 0}, Green},
		{"6-6 primary down backup up one intrusion", c66(), []bool{true, false}, []int{0, 1}, Orange},
		{"6-6 two intrusions", c66(), []bool{false, false}, []int{2, 0}, Gray},
		{"6-6 intrusions split across sites", c66(), []bool{false, false}, []int{1, 1}, Gray},
		{"6-6 both down", c66(), []bool{true, true}, []int{0, 0}, Red},

		// Configuration "6+6+6": needs two functional sites.
		{"6+6+6 all up", c666(), []bool{false, false, false}, []int{0, 0, 0}, Green},
		{"6+6+6 one site down", c666(), []bool{true, false, false}, []int{0, 0, 0}, Green},
		{"6+6+6 one down one intrusion", c666(), []bool{false, true, false}, []int{1, 0, 0}, Green},
		{"6+6+6 two sites down", c666(), []bool{true, true, false}, []int{0, 0, 0}, Red},
		{"6+6+6 all down", c666(), []bool{true, true, true}, []int{0, 0, 0}, Red},
		{"6+6+6 two intrusions", c666(), []bool{false, false, false}, []int{1, 1, 0}, Gray},
		{"6+6+6 two down one intrusion", c666(), []bool{true, true, false}, []int{0, 0, 1}, Red},
	}
	for _, r := range rows {
		for _, mechanism := range []string{"flooded", "isolated"} {
			t.Run(r.name+"/"+mechanism, func(t *testing.T) {
				st := NewSystemState(len(r.down))
				for i, d := range r.down {
					if d && mechanism == "flooded" {
						st.Flooded[i] = true
					}
					if d && mechanism == "isolated" {
						st.Isolated[i] = true
					}
					st.Intrusions[i] = r.intr[i]
				}
				if got := eval(t, r.cfg, st); got != r.want {
					t.Errorf("state = %v, want %v", got, r.want)
				}
			})
		}
	}
}

func TestIntrusionsInDownSitesDoNotCompromise(t *testing.T) {
	// The paper (§VI-B): if the hurricane floods the control centers,
	// there are no operational servers to compromise, so the system is
	// red, not gray. Intrusions recorded at non-functional sites must
	// not count toward safety loss.
	st := NewSystemState(1)
	st.Flooded[0] = true
	st.Intrusions[0] = 2
	if got := eval(t, c2(), st); got != Red {
		t.Errorf("flooded site with intrusions = %v, want red", got)
	}
	st66 := NewSystemState(2)
	st66.Isolated[0] = true
	st66.Intrusions[0] = 2
	if got := eval(t, c66(), st66); got != Orange {
		t.Errorf("isolated primary with stale intrusions = %v, want orange", got)
	}
}

func TestEvaluateValidation(t *testing.T) {
	// Mismatched state shape.
	if _, err := Evaluate(c22(), NewSystemState(1)); err == nil {
		t.Error("mismatched state size should error")
	}
	// Negative intrusions.
	st := NewSystemState(1)
	st.Intrusions[0] = -1
	if _, err := Evaluate(c2(), st); err == nil {
		t.Error("negative intrusions should error")
	}
	// Intrusions exceeding replica count.
	st2 := NewSystemState(1)
	st2.Intrusions[0] = 3
	if _, err := Evaluate(c2(), st2); err == nil {
		t.Error("more intrusions than replicas should error")
	}
	// Invalid config.
	bad := c2()
	bad.Name = ""
	if _, err := Evaluate(bad, NewSystemState(1)); err == nil {
		t.Error("invalid config should error")
	}
}

func TestStateOrderingAndStrings(t *testing.T) {
	order := States()
	want := []string{"green", "orange", "red", "gray"}
	if len(order) != len(want) {
		t.Fatalf("States() = %d entries", len(order))
	}
	for i, s := range order {
		if s.String() != want[i] {
			t.Errorf("state %d = %q, want %q", i, s.String(), want[i])
		}
	}
	if !Gray.Worse(Red) || !Red.Worse(Orange) || !Orange.Worse(Green) {
		t.Error("severity ordering broken")
	}
	if Green.Worse(Green) {
		t.Error("a state is not worse than itself")
	}
	if got := State(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown state String() = %q", got)
	}
}

func TestSystemStateHelpers(t *testing.T) {
	st := NewSystemState(3)
	st.Flooded[0] = true
	st.Isolated[1] = true
	if st.SiteFunctional(0) || st.SiteFunctional(1) || !st.SiteFunctional(2) {
		t.Error("SiteFunctional wrong")
	}
	if got := st.FunctionalSites(); got != 1 {
		t.Errorf("FunctionalSites = %d, want 1", got)
	}
	clone := st.Clone()
	clone.Flooded[2] = true
	clone.Intrusions[2] = 1
	if st.Flooded[2] || st.Intrusions[2] != 0 {
		t.Error("Clone aliases original")
	}
}
