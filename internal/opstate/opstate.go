package opstate

import (
	"errors"
	"fmt"

	"compoundthreat/internal/topology"
)

// State is a system operational state.
type State int

// Operational states, ordered from best to worst so that comparisons
// express severity.
const (
	Green State = iota + 1
	Orange
	Red
	Gray
)

// States lists all states from best to worst.
func States() []State { return []State{Green, Orange, Red, Gray} }

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Green:
		return "green"
	case Orange:
		return "orange"
	case Red:
		return "red"
	case Gray:
		return "gray"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Worse reports whether s is strictly worse than other (gray is the
// worst: the attacker controls system behavior).
func (s State) Worse(other State) bool { return s > other }

// SystemState is the condition of every site of a configuration after
// the natural disaster and any cyberattack. Slices are indexed by site
// position in Config.Sites.
type SystemState struct {
	// Flooded marks sites rendered non-operational by the natural
	// disaster.
	Flooded []bool
	// Isolated marks sites cut off from the network by a site-isolation
	// attack.
	Isolated []bool
	// Intrusions counts compromised servers per site.
	Intrusions []int
}

// NewSystemState returns a zeroed state for n sites.
func NewSystemState(n int) SystemState {
	return SystemState{
		Flooded:    make([]bool, n),
		Isolated:   make([]bool, n),
		Intrusions: make([]int, n),
	}
}

// Clone returns a deep copy.
func (st SystemState) Clone() SystemState {
	c := NewSystemState(len(st.Flooded))
	copy(c.Flooded, st.Flooded)
	copy(c.Isolated, st.Isolated)
	copy(c.Intrusions, st.Intrusions)
	return c
}

// SiteFunctional reports whether site i survived the disaster and is
// reachable (not flooded, not isolated).
func (st SystemState) SiteFunctional(i int) bool {
	return !st.Flooded[i] && !st.Isolated[i]
}

// FunctionalSites returns the number of functional sites.
func (st SystemState) FunctionalSites() int {
	var n int
	for i := range st.Flooded {
		if st.SiteFunctional(i) {
			n++
		}
	}
	return n
}

// validateFor reports the first shape mismatch with the configuration.
func (st SystemState) validateFor(cfg topology.Config) error {
	n := len(cfg.Sites)
	if len(st.Flooded) != n || len(st.Isolated) != n || len(st.Intrusions) != n {
		return fmt.Errorf("opstate: state sized for %d/%d/%d sites, config %q has %d",
			len(st.Flooded), len(st.Isolated), len(st.Intrusions), cfg.Name, n)
	}
	for i, k := range st.Intrusions {
		if k < 0 {
			return fmt.Errorf("opstate: negative intrusion count at site %d", i)
		}
		if k > cfg.Sites[i].Replicas {
			return fmt.Errorf("opstate: %d intrusions at site %d exceed its %d replicas",
				k, i, cfg.Sites[i].Replicas)
		}
	}
	return nil
}

// Evaluate returns the operational state of the configuration in the
// given system state, per Table I of the paper.
//
// Safety: the system is gray when the number of compromised servers in
// *functional* sites exceeds the tolerated f. Compromised servers in
// flooded or isolated sites cannot influence the system (the paper's
// §VI-B observation that an attacker gains nothing from servers the
// hurricane already took out).
//
// Availability (checked only when safety holds):
//
//   - SingleSite: green iff the site is functional, else red.
//   - PrimaryBackup: green iff the primary is functional; orange iff
//     only the cold backup is functional (activation downtime); red
//     otherwise.
//   - ActiveReplication: green iff at least MinActiveSites sites are
//     functional, else red.
func Evaluate(cfg topology.Config, st SystemState) (State, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if err := st.validateFor(cfg); err != nil {
		return 0, err
	}
	return EvaluateUnchecked(cfg, st)
}

// EvaluateUnchecked is Evaluate without the validation pass. Callers
// must guarantee that cfg is valid and st is shaped for it (slices of
// len(cfg.Sites), per-site intrusions within replica counts); it exists
// for hot loops — attack.Analyzer and the analysis engine — that
// validate once and then evaluate millions of states without
// allocating.
func EvaluateUnchecked(cfg topology.Config, st SystemState) (State, error) {
	var effective int
	for i, k := range st.Intrusions {
		if st.SiteFunctional(i) {
			effective += k
		}
	}
	if effective > cfg.IntrusionsTolerated {
		return Gray, nil
	}

	switch cfg.Arch {
	case topology.SingleSite:
		if st.SiteFunctional(0) {
			return Green, nil
		}
		return Red, nil
	case topology.PrimaryBackup:
		switch {
		case st.SiteFunctional(0):
			return Green, nil
		case st.SiteFunctional(1):
			return Orange, nil
		default:
			return Red, nil
		}
	case topology.ActiveReplication:
		if st.FunctionalSites() >= cfg.MinActiveSites {
			return Green, nil
		}
		return Red, nil
	default:
		return 0, errors.New("opstate: unknown architecture")
	}
}
