package engine

import (
	"sync"

	"compoundthreat/internal/attack"
	"compoundthreat/internal/obs"
	"compoundthreat/internal/opstate"
	"compoundthreat/internal/stats"
	"compoundthreat/internal/threat"
	"compoundthreat/internal/topology"
)

// maxMemoSites bounds the per-pattern memo table (2^S entries). Every
// configuration family in this module has at most four sites; beyond
// the bound the evaluator falls back to per-realization evaluation,
// which is still allocation-free.
const maxMemoSites = 16

// Counts is a fixed-size operational-state histogram, indexed by
// opstate.State. It is the allocation-free accumulator of the
// realization loop; convert to a stats.Profile once per cell.
type Counts [int(opstate.Gray) + 1]int

// Add merges other into c.
func (c *Counts) Add(other *Counts) {
	for i, n := range other {
		c[i] += n
	}
}

// Total returns the number of recorded outcomes.
func (c *Counts) Total() int {
	var t int
	for _, n := range c {
		t += n
	}
	return t
}

// Profile converts the histogram to a stats.Profile, adding states in
// severity order so the result is identical to sequential accumulation.
func (c *Counts) Profile() *stats.Profile {
	p := stats.NewProfile()
	for _, s := range opstate.States() {
		p.AddN(s, c[s])
	}
	return p
}

// Evaluator evaluates one (configuration, attacker capability) cell
// against a compiled failure matrix. It memoizes the worst-case
// operational state per flooded-site pattern: the greedy attacker is a
// pure function of which sites the disaster took out, so a
// configuration with S sites needs at most 2^S attack evaluations no
// matter how many realizations the ensemble has. Not safe for
// concurrent use; give each worker its own Evaluator.
type Evaluator struct {
	m    *FailureMatrix
	cols []int
	an   *attack.Analyzer
	// memo[p] is the outcome of flooded pattern p once have[p] is set.
	memo  []opstate.State
	have  []bool
	flood []bool   // scratch for the non-memoized fallback
	sites []string // scratch for site-asset resolution on Reset
	// Observability counters, resolved once at construction; nil (and
	// therefore free) when instrumentation is disabled.
	memoHits      *obs.Counter
	memoMisses    *obs.Counter
	fallbackEvals *obs.Counter
	realizations  *obs.Counter
}

// NewEvaluator resolves the configuration's site assets to matrix
// columns and validates the configuration and capability once.
func NewEvaluator(m *FailureMatrix, cfg topology.Config, capability threat.Capability) (*Evaluator, error) {
	ev := &Evaluator{}
	if rec := obs.Default(); rec != nil {
		ev.memoHits = rec.Counter("engine.memo_hits")
		ev.memoMisses = rec.Counter("engine.memo_misses")
		ev.fallbackEvals = rec.Counter("engine.fallback_evals")
		ev.realizations = rec.Counter("engine.realizations")
	}
	if err := ev.Reset(m, cfg, capability); err != nil {
		return nil, err
	}
	return ev, nil
}

// Reset rebinds the evaluator to a new (matrix, configuration,
// capability) cell, reusing the memo table, column, and analyzer
// scratch from the previous cell whenever capacities allow. Sweeps
// that evaluate many cells (placement search, figure matrices) reset
// one evaluator per worker instead of re-allocating 2^S memo tables
// per cell.
func (ev *Evaluator) Reset(m *FailureMatrix, cfg topology.Config, capability threat.Capability) error {
	if ev.an == nil {
		an, err := attack.NewAnalyzer(cfg, capability)
		if err != nil {
			return err
		}
		ev.an = an
	} else if err := ev.an.Reset(cfg, capability); err != nil {
		return err
	}
	ev.sites = ev.sites[:0]
	for _, s := range cfg.Sites {
		ev.sites = append(ev.sites, s.AssetID)
	}
	cols, err := m.ColumnsAppend(ev.cols[:0], ev.sites)
	if err != nil {
		return err
	}
	ev.m, ev.cols = m, cols
	if n := len(cols); n <= maxMemoSites {
		size := 1 << uint(n)
		if cap(ev.memo) >= size && cap(ev.have) >= size {
			ev.memo = ev.memo[:size]
			ev.have = ev.have[:size]
			for i := range ev.have {
				ev.have[i] = false
			}
		} else {
			ev.memo = make([]opstate.State, size)
			ev.have = make([]bool, size)
		}
	} else {
		ev.memo, ev.have = nil, nil
		if cap(ev.flood) < n {
			ev.flood = make([]bool, 0, n)
		}
	}
	return nil
}

// EvaluatorPool recycles evaluators (and their 2^S memo tables) across
// the cells of a sweep. Get either resets a pooled evaluator to the
// requested cell or constructs a fresh one; Put returns it for reuse.
// Safe for concurrent use; results are unaffected by pooling because
// Reset clears the memo occupancy table.
type EvaluatorPool struct {
	pool sync.Pool
}

// Get returns an evaluator bound to the given cell.
func (p *EvaluatorPool) Get(m *FailureMatrix, cfg topology.Config, capability threat.Capability) (*Evaluator, error) {
	if v := p.pool.Get(); v != nil {
		ev := v.(*Evaluator)
		if err := ev.Reset(m, cfg, capability); err != nil {
			return nil, err
		}
		return ev, nil
	}
	return NewEvaluator(m, cfg, capability)
}

// Put returns an evaluator to the pool.
func (p *EvaluatorPool) Put(ev *Evaluator) {
	if ev != nil {
		p.pool.Put(ev)
	}
}

// AddRange evaluates realizations [lo, hi) into counts. The loop body
// performs no allocations: patterns are read straight from the
// bit-packed matrix and outcomes come from the memo table (filled
// lazily through the reusable analyzer).
func (ev *Evaluator) AddRange(counts *Counts, lo, hi int) error {
	if ev.memo != nil {
		misses := 0
		for r := lo; r < hi; r++ {
			p := ev.m.Pattern(r, ev.cols)
			if !ev.have[p] {
				misses++
				s, err := ev.an.EvaluateMask(p)
				if err != nil {
					return err
				}
				ev.memo[p], ev.have[p] = s, true
			}
			counts[ev.memo[p]]++
		}
		// Flush memo statistics once per range: the loop body itself
		// stays branch-light and allocation-free in both modes.
		ev.memoHits.Add(int64(hi - lo - misses))
		ev.memoMisses.Add(int64(misses))
		ev.realizations.Add(int64(hi - lo))
		return nil
	}
	for r := lo; r < hi; r++ {
		ev.flood = ev.m.Gather(ev.flood[:0], r, ev.cols)
		s, err := ev.an.Evaluate(ev.flood)
		if err != nil {
			return err
		}
		counts[s]++
	}
	ev.fallbackEvals.Add(int64(hi - lo))
	ev.realizations.Add(int64(hi - lo))
	return nil
}

// AddWeighted evaluates distinct rows [lo, hi) of the compressed view
// into counts, adding each row's multiplicity to its outcome bucket.
// Because the attacker is a pure function of the flooded pattern, the
// result is bit-identical to AddRange over the realizations the rows
// stand for — at O(distinct rows) cost. The loop body performs no
// allocations. cm must be a compression of the evaluator's matrix.
func (ev *Evaluator) AddWeighted(counts *Counts, cm *CompressedMatrix, lo, hi int) error {
	if cm.Source() != ev.m {
		return errCompressedMismatch
	}
	if ev.memo != nil {
		misses, covered := 0, 0
		for i := lo; i < hi; i++ {
			p := cm.Pattern(i, ev.cols)
			if !ev.have[p] {
				misses++
				s, err := ev.an.EvaluateMask(p)
				if err != nil {
					return err
				}
				ev.memo[p], ev.have[p] = s, true
			}
			w := cm.weights[i]
			counts[ev.memo[p]] += w
			covered += w
		}
		ev.memoHits.Add(int64(hi - lo - misses))
		ev.memoMisses.Add(int64(misses))
		ev.realizations.Add(int64(covered))
		return nil
	}
	covered := 0
	for i := lo; i < hi; i++ {
		ev.flood = cm.Gather(ev.flood[:0], i, ev.cols)
		s, err := ev.an.Evaluate(ev.flood)
		if err != nil {
			return err
		}
		w := cm.weights[i]
		counts[s] += w
		covered += w
	}
	ev.fallbackEvals.Add(int64(hi - lo))
	ev.realizations.Add(int64(covered))
	return nil
}

// CellCountsCompressed is CellCounts over a compressed view: every
// distinct pattern is evaluated exactly once and weighted by its
// multiplicity, so the cell costs O(distinct rows) instead of
// O(realizations). Results are bit-identical to CellCounts on the
// source matrix.
func CellCountsCompressed(cm *CompressedMatrix, cfg topology.Config, capability threat.Capability, workers int) (Counts, error) {
	var total Counts
	workers = Workers(workers)
	if workers <= 1 || cm.DistinctRows() < 2*workers {
		ev, err := NewEvaluator(cm.Source(), cfg, capability)
		if err != nil {
			return Counts{}, err
		}
		err = ev.AddWeighted(&total, cm, 0, cm.DistinctRows())
		return total, err
	}
	parts := chunks(cm.DistinctRows(), workers)
	results := make([]Counts, len(parts))
	err := ForEach(workers, len(parts), func(i int) error {
		ev, err := NewEvaluator(cm.Source(), cfg, capability)
		if err != nil {
			return err
		}
		return ev.AddWeighted(&results[i], cm, parts[i].lo, parts[i].hi)
	})
	if err != nil {
		return Counts{}, err
	}
	for i := range results {
		total.Add(&results[i])
	}
	return total, nil
}

// CellProfileCompressed is CellCountsCompressed rendered as a
// stats.Profile.
func CellProfileCompressed(cm *CompressedMatrix, cfg topology.Config, capability threat.Capability, workers int) (*stats.Profile, error) {
	counts, err := CellCountsCompressed(cm, cfg, capability, workers)
	if err != nil {
		return nil, err
	}
	return counts.Profile(), nil
}

// CellCounts evaluates every realization of the cell, splitting the
// realization range into per-worker chunks (each with its own
// Evaluator) and merging chunk histograms in fixed index order, so the
// result is bit-identical to a sequential pass.
func CellCounts(m *FailureMatrix, cfg topology.Config, cap threat.Capability, workers int) (Counts, error) {
	var total Counts
	workers = Workers(workers)
	if workers <= 1 || m.Rows() < 2*workers {
		ev, err := NewEvaluator(m, cfg, cap)
		if err != nil {
			return Counts{}, err
		}
		err = ev.AddRange(&total, 0, m.Rows())
		return total, err
	}
	parts := chunks(m.Rows(), workers)
	results := make([]Counts, len(parts))
	err := ForEach(workers, len(parts), func(i int) error {
		ev, err := NewEvaluator(m, cfg, cap)
		if err != nil {
			return err
		}
		return ev.AddRange(&results[i], parts[i].lo, parts[i].hi)
	})
	if err != nil {
		return Counts{}, err
	}
	for i := range results {
		total.Add(&results[i])
	}
	return total, nil
}

// CellProfile is CellCounts rendered as a stats.Profile.
func CellProfile(m *FailureMatrix, cfg topology.Config, cap threat.Capability, workers int) (*stats.Profile, error) {
	counts, err := CellCounts(m, cfg, cap, workers)
	if err != nil {
		return nil, err
	}
	return counts.Profile(), nil
}
