package engine

import (
	"compoundthreat/internal/attack"
	"compoundthreat/internal/obs"
	"compoundthreat/internal/opstate"
	"compoundthreat/internal/stats"
	"compoundthreat/internal/threat"
	"compoundthreat/internal/topology"
)

// maxMemoSites bounds the per-pattern memo table (2^S entries). Every
// configuration family in this module has at most four sites; beyond
// the bound the evaluator falls back to per-realization evaluation,
// which is still allocation-free.
const maxMemoSites = 16

// Counts is a fixed-size operational-state histogram, indexed by
// opstate.State. It is the allocation-free accumulator of the
// realization loop; convert to a stats.Profile once per cell.
type Counts [int(opstate.Gray) + 1]int

// Add merges other into c.
func (c *Counts) Add(other *Counts) {
	for i, n := range other {
		c[i] += n
	}
}

// Total returns the number of recorded outcomes.
func (c *Counts) Total() int {
	var t int
	for _, n := range c {
		t += n
	}
	return t
}

// Profile converts the histogram to a stats.Profile, adding states in
// severity order so the result is identical to sequential accumulation.
func (c *Counts) Profile() *stats.Profile {
	p := stats.NewProfile()
	for _, s := range opstate.States() {
		p.AddN(s, c[s])
	}
	return p
}

// Evaluator evaluates one (configuration, attacker capability) cell
// against a compiled failure matrix. It memoizes the worst-case
// operational state per flooded-site pattern: the greedy attacker is a
// pure function of which sites the disaster took out, so a
// configuration with S sites needs at most 2^S attack evaluations no
// matter how many realizations the ensemble has. Not safe for
// concurrent use; give each worker its own Evaluator.
type Evaluator struct {
	m    *FailureMatrix
	cols []int
	an   *attack.Analyzer
	// memo[p] is the outcome of flooded pattern p once have[p] is set.
	memo  []opstate.State
	have  []bool
	flood []bool // scratch for the non-memoized fallback
	// Observability counters, resolved once at construction; nil (and
	// therefore free) when instrumentation is disabled.
	memoHits      *obs.Counter
	memoMisses    *obs.Counter
	fallbackEvals *obs.Counter
	realizations  *obs.Counter
}

// NewEvaluator resolves the configuration's site assets to matrix
// columns and validates the configuration and capability once.
func NewEvaluator(m *FailureMatrix, cfg topology.Config, cap threat.Capability) (*Evaluator, error) {
	an, err := attack.NewAnalyzer(cfg, cap)
	if err != nil {
		return nil, err
	}
	siteAssets := make([]string, len(cfg.Sites))
	for i, s := range cfg.Sites {
		siteAssets[i] = s.AssetID
	}
	cols, err := m.Columns(siteAssets)
	if err != nil {
		return nil, err
	}
	ev := &Evaluator{m: m, cols: cols, an: an}
	if rec := obs.Default(); rec != nil {
		ev.memoHits = rec.Counter("engine.memo_hits")
		ev.memoMisses = rec.Counter("engine.memo_misses")
		ev.fallbackEvals = rec.Counter("engine.fallback_evals")
		ev.realizations = rec.Counter("engine.realizations")
	}
	if len(cols) <= maxMemoSites {
		ev.memo = make([]opstate.State, 1<<uint(len(cols)))
		ev.have = make([]bool, 1<<uint(len(cols)))
	} else {
		ev.flood = make([]bool, 0, len(cols))
	}
	return ev, nil
}

// AddRange evaluates realizations [lo, hi) into counts. The loop body
// performs no allocations: patterns are read straight from the
// bit-packed matrix and outcomes come from the memo table (filled
// lazily through the reusable analyzer).
func (ev *Evaluator) AddRange(counts *Counts, lo, hi int) error {
	if ev.memo != nil {
		misses := 0
		for r := lo; r < hi; r++ {
			p := ev.m.Pattern(r, ev.cols)
			if !ev.have[p] {
				misses++
				s, err := ev.an.EvaluateMask(p)
				if err != nil {
					return err
				}
				ev.memo[p], ev.have[p] = s, true
			}
			counts[ev.memo[p]]++
		}
		// Flush memo statistics once per range: the loop body itself
		// stays branch-light and allocation-free in both modes.
		ev.memoHits.Add(int64(hi - lo - misses))
		ev.memoMisses.Add(int64(misses))
		ev.realizations.Add(int64(hi - lo))
		return nil
	}
	for r := lo; r < hi; r++ {
		ev.flood = ev.m.Gather(ev.flood[:0], r, ev.cols)
		s, err := ev.an.Evaluate(ev.flood)
		if err != nil {
			return err
		}
		counts[s]++
	}
	ev.fallbackEvals.Add(int64(hi - lo))
	ev.realizations.Add(int64(hi - lo))
	return nil
}

// CellCounts evaluates every realization of the cell, splitting the
// realization range into per-worker chunks (each with its own
// Evaluator) and merging chunk histograms in fixed index order, so the
// result is bit-identical to a sequential pass.
func CellCounts(m *FailureMatrix, cfg topology.Config, cap threat.Capability, workers int) (Counts, error) {
	var total Counts
	workers = Workers(workers)
	if workers <= 1 || m.Rows() < 2*workers {
		ev, err := NewEvaluator(m, cfg, cap)
		if err != nil {
			return Counts{}, err
		}
		err = ev.AddRange(&total, 0, m.Rows())
		return total, err
	}
	parts := chunks(m.Rows(), workers)
	results := make([]Counts, len(parts))
	err := ForEach(workers, len(parts), func(i int) error {
		ev, err := NewEvaluator(m, cfg, cap)
		if err != nil {
			return err
		}
		return ev.AddRange(&results[i], parts[i].lo, parts[i].hi)
	})
	if err != nil {
		return Counts{}, err
	}
	for i := range results {
		total.Add(&results[i])
	}
	return total, nil
}

// CellProfile is CellCounts rendered as a stats.Profile.
func CellProfile(m *FailureMatrix, cfg topology.Config, cap threat.Capability, workers int) (*stats.Profile, error) {
	counts, err := CellCounts(m, cfg, cap, workers)
	if err != nil {
		return nil, err
	}
	return counts.Profile(), nil
}
