package engine

// Row deduplication. The paper's central empirical observation (§VI)
// is that flood outcomes are heavily correlated across realizations —
// Honolulu and Waiau flood together in every one of the 1000 ADCIRC
// realizations — so a compiled FailureMatrix has far fewer *distinct*
// rows than realizations. A CompressedMatrix groups identical rows
// into (pattern, multiplicity) pairs once; a weighted evaluation pass
// (Evaluator.AddWeighted, CellCountsCompressed) then touches each
// distinct row exactly once per cell and adds its multiplicity to the
// outcome histogram. Because operational-state counts are integers and
// the attacker is a pure function of the flooded pattern, the weighted
// histogram is bit-identical to walking every realization.

import (
	"errors"

	"compoundthreat/internal/obs"
)

// fnv64Offset / fnv64Prime are the FNV-1a 64-bit parameters used to
// hash rows during grouping.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// CompressedMatrix is the deduplicated view of a FailureMatrix:
// distinct rows in first-occurrence order, each with the number of
// source realizations that share it. It is immutable after
// construction, so any number of workers may read it concurrently.
type CompressedMatrix struct {
	src     *FailureMatrix
	stride  int
	bits    []uint64 // distinct rows × stride, first-occurrence order
	weights []int    // multiplicity per distinct row
	rows    int      // input realizations (sum of weights)
}

// linearScanLimit bounds the distinct-row count up to which the
// single-word fast path uses a plain linear scan: ensembles in this
// module have a handful of distinct patterns, where scanning a short
// slice beats hashing every row. Past the bound the pass spills to a
// map index for the remaining rows, so adversarial all-distinct
// ensembles stay O(rows) with a bounded constant.
const linearScanLimit = 64

// Compress deduplicates the matrix rows in one hash-grouped pass.
// Row hashing parallelizes across up to workers goroutines (0 =
// NumCPU, 1 = inline); grouping itself is a deterministic sequential
// pass over the hashes, so the distinct-row order (first occurrence)
// and weights are identical for every worker count. Single-word
// matrices (at most 64 assets) with few distinct patterns skip the
// hashing pass entirely.
func Compress(m *FailureMatrix, workers int) *CompressedMatrix {
	rec := obs.Default()
	defer rec.StartSpan("engine.compress").End()
	c := &CompressedMatrix{src: m, stride: m.stride, rows: m.rows}
	if m.stride == 1 {
		compressWords(c, m)
		recordCompression(rec, c)
		return c
	}

	// Hash every row up front; this is the only O(rows × stride) part
	// and every row is independent.
	hashes := make([]uint64, m.rows)
	hashRange := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			h := uint64(fnv64Offset)
			for _, w := range m.bits[r*m.stride : (r+1)*m.stride] {
				for b := 0; b < 64; b += 8 {
					h = (h ^ (w >> uint(b) & 0xff)) * fnv64Prime
				}
			}
			hashes[r] = h
		}
	}
	if workers = Workers(workers); workers > 1 && m.rows >= 2*workers {
		parts := chunks(m.rows, workers)
		_ = ForEach(workers, len(parts), func(i int) error {
			hashRange(parts[i].lo, parts[i].hi)
			return nil
		})
	} else {
		hashRange(0, m.rows)
	}

	// Group rows by hash in realization order, comparing words on hash
	// collisions, so distinct rows come out in first-occurrence order.
	byHash := make(map[uint64][]int, m.rows/4+1)
rows:
	for r := 0; r < m.rows; r++ {
		row := m.bits[r*m.stride : (r+1)*m.stride]
		for _, d := range byHash[hashes[r]] {
			if equalRow(c.bits[d*c.stride:(d+1)*c.stride], row) {
				c.weights[d]++
				continue rows
			}
		}
		d := len(c.weights)
		c.bits = append(c.bits, row...)
		c.weights = append(c.weights, 1)
		byHash[hashes[r]] = append(byHash[hashes[r]], d)
	}

	recordCompression(rec, c)
	return c
}

// compressWords groups single-word rows in realization order: a linear
// scan over the distinct words while they stay few (the expected case —
// correlated flooding yields a handful of patterns), spilling to a map
// index if the ensemble turns out to be pattern-rich. Both phases keep
// first-occurrence order, so the result is identical to the hashed
// path.
func compressWords(c *CompressedMatrix, m *FailureMatrix) {
	var index map[uint64]int
	for r := 0; r < m.rows; r++ {
		w := m.bits[r]
		if index == nil {
			found := false
			for d, dw := range c.bits {
				if dw == w {
					c.weights[d]++
					found = true
					break
				}
			}
			if found {
				continue
			}
			if len(c.bits) == linearScanLimit {
				index = make(map[uint64]int, 2*linearScanLimit)
				for d, dw := range c.bits {
					index[dw] = d
				}
			}
		}
		if index != nil {
			if d, ok := index[w]; ok {
				c.weights[d]++
				continue
			}
			index[w] = len(c.bits)
		}
		c.bits = append(c.bits, w)
		c.weights = append(c.weights, 1)
	}
}

// recordCompression flushes the dedup counters once per compression.
func recordCompression(rec *obs.Recorder, c *CompressedMatrix) {
	if rec == nil {
		return
	}
	rec.Counter("engine.dedup_input_rows").Add(int64(c.rows))
	rec.Counter("engine.distinct_patterns").Add(int64(len(c.weights)))
	// Per-compression ratio in basis points (10000 = incompressible).
	if c.rows > 0 {
		rec.Histogram("engine.dedup_ratio").Observe(int64(len(c.weights)) * 10000 / int64(c.rows))
	}
}

// equalRow compares two stride-sized row slices.
func equalRow(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Source returns the matrix this view was compressed from.
func (c *CompressedMatrix) Source() *FailureMatrix { return c.src }

// Rows returns the number of input realizations (the sum of weights).
func (c *CompressedMatrix) Rows() int { return c.rows }

// DistinctRows returns the number of distinct failure patterns.
func (c *CompressedMatrix) DistinctRows() int { return len(c.weights) }

// Weight returns the multiplicity of distinct row i: how many source
// realizations share its pattern.
func (c *CompressedMatrix) Weight(i int) int { return c.weights[i] }

// Ratio returns distinct/input rows in (0, 1]: 1.0 means the ensemble
// was incompressible (every realization distinct).
func (c *CompressedMatrix) Ratio() float64 {
	if c.rows == 0 {
		return 1
	}
	return float64(len(c.weights)) / float64(c.rows)
}

// Pattern packs the flags of the given columns in distinct row i into
// a bitmask, exactly like FailureMatrix.Pattern.
func (c *CompressedMatrix) Pattern(i int, cols []int) uint64 {
	base := i * c.stride
	var p uint64
	for j, col := range cols {
		if c.bits[base+col>>6]&(1<<uint(col&63)) != 0 {
			p |= 1 << uint(j)
		}
	}
	return p
}

// Gather appends the flags of the given columns in distinct row i to
// dst, exactly like FailureMatrix.Gather.
func (c *CompressedMatrix) Gather(dst []bool, i int, cols []int) []bool {
	base := i * c.stride
	for _, col := range cols {
		dst = append(dst, c.bits[base+col>>6]&(1<<uint(col&63)) != 0)
	}
	return dst
}

// errCompressedMismatch is returned when a compressed view is paired
// with an evaluator built over a different matrix.
var errCompressedMismatch = errors.New("engine: compressed matrix does not view the evaluator's failure matrix")
