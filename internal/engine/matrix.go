package engine

import (
	"errors"
	"fmt"
	"math/bits"

	"compoundthreat/internal/obs"
)

// FailureMatrix is a bit-packed (realization × asset) failure table
// compiled once from a disaster ensemble. Row r holds one bit per
// column: bit c set means asset c failed in realization r. After
// compilation every access is pure slice arithmetic — no map lookups,
// no interface calls, no allocations — and the matrix is immutable, so
// any number of workers may read it concurrently.
type FailureMatrix struct {
	ids    []string
	col    map[string]int
	rows   int
	stride int // uint64 words per row
	bits   []uint64
}

// NewFailureMatrix compiles the ensemble's failure flags for the given
// assets. Asset IDs are resolved through the source exactly once; the
// source's AppendFailureVector is used when available so compilation
// reuses a single row buffer.
func NewFailureMatrix(src Source, assetIDs []string) (*FailureMatrix, error) {
	if src == nil {
		return nil, errors.New("engine: nil source")
	}
	if len(assetIDs) == 0 {
		return nil, errors.New("engine: no assets")
	}
	rec := obs.Default()
	defer rec.StartSpan("engine.matrix_compile").End()
	m := &FailureMatrix{
		ids:    append([]string(nil), assetIDs...),
		col:    make(map[string]int, len(assetIDs)),
		rows:   src.Size(),
		stride: (len(assetIDs) + 63) / 64,
	}
	for i, id := range m.ids {
		if _, dup := m.col[id]; dup {
			return nil, fmt.Errorf("engine: duplicate asset %q", id)
		}
		m.col[id] = i
	}
	m.bits = make([]uint64, m.rows*m.stride)
	if ca, ok := src.(ColumnAppender); ok {
		// Column-major fast path: resolve each asset once, fetch its
		// whole realization column as a bitset, and transpose by walking
		// only the set bits — failures are sparse, so this touches far
		// fewer cells than a row-major walk over every (row, asset) pair.
		words := (m.rows + 63) / 64
		colbuf := make([]uint64, 0, words)
		for c, id := range m.ids {
			col, err := ca.AppendFailureBits(colbuf[:0], id)
			if err != nil {
				return nil, fmt.Errorf("engine: asset %q: %w", id, err)
			}
			if len(col) != words {
				return nil, fmt.Errorf("engine: asset %q: got %d column words, want %d", id, len(col), words)
			}
			if rem := m.rows & 63; rem != 0 {
				col[words-1] &= 1<<uint(rem) - 1
			}
			word, bit := c>>6, uint64(1)<<uint(c&63)
			for w, bw := range col {
				base := w * 64
				for bw != 0 {
					r := base + bits.TrailingZeros64(bw)
					bw &= bw - 1
					m.bits[r*m.stride+word] |= bit
				}
			}
			colbuf = col[:0]
		}
	} else {
		ap, _ := src.(VectorAppender)
		buf := make([]bool, 0, len(m.ids))
		for r := 0; r < m.rows; r++ {
			var (
				vec []bool
				err error
			)
			if ap != nil {
				vec, err = ap.AppendFailureVector(buf[:0], r, m.ids)
				buf = vec[:0]
			} else {
				vec, err = src.FailureVector(r, m.ids)
			}
			if err != nil {
				return nil, fmt.Errorf("engine: realization %d: %w", r, err)
			}
			if len(vec) != len(m.ids) {
				return nil, fmt.Errorf("engine: realization %d: got %d flags, want %d", r, len(vec), len(m.ids))
			}
			base := r * m.stride
			for c, failed := range vec {
				if failed {
					m.bits[base+c>>6] |= 1 << uint(c&63)
				}
			}
		}
	}
	if rec != nil {
		rec.Counter("engine.matrices_compiled").Add(1)
		rec.Counter("engine.matrix_rows").Add(int64(m.rows))
		rec.Counter("engine.matrix_cells").Add(int64(m.rows) * int64(len(m.ids)))
	}
	return m, nil
}

// Rows returns the number of realizations.
func (m *FailureMatrix) Rows() int { return m.rows }

// Assets returns the asset IDs in column order.
func (m *FailureMatrix) Assets() []string { return append([]string(nil), m.ids...) }

// Column returns the column index of an asset.
func (m *FailureMatrix) Column(assetID string) (int, bool) {
	c, ok := m.col[assetID]
	return c, ok
}

// Columns resolves several asset IDs to column indices.
func (m *FailureMatrix) Columns(assetIDs []string) ([]int, error) {
	return m.ColumnsAppend(make([]int, 0, len(assetIDs)), assetIDs)
}

// ColumnsAppend is the allocation-free variant of Columns: it appends
// the resolved column indices to dst and returns the extended slice.
func (m *FailureMatrix) ColumnsAppend(dst []int, assetIDs []string) ([]int, error) {
	for _, id := range assetIDs {
		c, ok := m.col[id]
		if !ok {
			return nil, fmt.Errorf("engine: asset %q not in failure matrix", id)
		}
		dst = append(dst, c)
	}
	return dst, nil
}

// Failed reports cell (r, c).
func (m *FailureMatrix) Failed(r, c int) bool {
	return m.bits[r*m.stride+c>>6]&(1<<uint(c&63)) != 0
}

// Pattern packs the flags of the given columns in realization r into a
// bitmask: bit j of the result is the flag of cols[j]. len(cols) must
// be at most 64.
func (m *FailureMatrix) Pattern(r int, cols []int) uint64 {
	base := r * m.stride
	var p uint64
	for j, c := range cols {
		if m.bits[base+c>>6]&(1<<uint(c&63)) != 0 {
			p |= 1 << uint(j)
		}
	}
	return p
}

// Gather appends the flags of the given columns in realization r to
// dst and returns the extended slice. With a pre-sized dst it performs
// no allocations.
func (m *FailureMatrix) Gather(dst []bool, r int, cols []int) []bool {
	base := r * m.stride
	for _, c := range cols {
		dst = append(dst, m.bits[base+c>>6]&(1<<uint(c&63)) != 0)
	}
	return dst
}

// FailureCount returns how many realizations fail column c.
func (m *FailureMatrix) FailureCount(c int) int {
	var n int
	for r := 0; r < m.rows; r++ {
		if m.Failed(r, c) {
			n++
		}
	}
	return n
}
