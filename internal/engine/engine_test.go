package engine_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"compoundthreat/internal/engine"
	"compoundthreat/internal/hazard"
	"compoundthreat/internal/opstate"
	"compoundthreat/internal/threat"
	"compoundthreat/internal/topology"
)

// randomEnsemble builds a hazard ensemble with pseudo-random flood
// depths over the given assets.
func randomEnsemble(t testing.TB, seed int64, realizations int, assetIDs []string) *hazard.Ensemble {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := hazard.OahuScenario()
	cfg.Realizations = realizations
	rows := make([][]float64, realizations)
	for r := range rows {
		rows[r] = make([]float64, len(assetIDs))
		for i := range rows[r] {
			// ~30% of entries exceed the 0.5 m flood threshold.
			if rng.Float64() < 0.3 {
				rows[r][i] = 1.0
			}
		}
	}
	e, err := hazard.NewEnsembleFromDepths(cfg, assetIDs, rows)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFailureMatrixMatchesFailureVector(t *testing.T) {
	assets := []string{"a", "b", "c", "d", "e"}
	e := randomEnsemble(t, 1, 200, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != e.Size() {
		t.Fatalf("Rows() = %d, want %d", m.Rows(), e.Size())
	}
	if got := m.Assets(); len(got) != len(assets) {
		t.Fatalf("Assets() = %v", got)
	}
	for r := 0; r < e.Size(); r++ {
		want, err := e.FailureVector(r, assets)
		if err != nil {
			t.Fatal(err)
		}
		for c, id := range assets {
			col, ok := m.Column(id)
			if !ok || col != c {
				t.Fatalf("Column(%q) = %d, %v", id, col, ok)
			}
			if m.Failed(r, c) != want[c] {
				t.Errorf("Failed(%d, %d) = %v, want %v", r, c, m.Failed(r, c), want[c])
			}
		}
	}
}

func TestFailureMatrixPatternAndGather(t *testing.T) {
	assets := []string{"a", "b", "c"}
	e := randomEnsemble(t, 2, 100, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	// Gather and Pattern over a permuted column subset must agree with
	// the ensemble's own FailureVector for those assets.
	sub := []string{"c", "a"}
	cols, err := m.Columns(sub)
	if err != nil {
		t.Fatal(err)
	}
	var buf []bool
	for r := 0; r < m.Rows(); r++ {
		want, err := e.FailureVector(r, sub)
		if err != nil {
			t.Fatal(err)
		}
		buf = m.Gather(buf[:0], r, cols)
		p := m.Pattern(r, cols)
		for j := range sub {
			if buf[j] != want[j] {
				t.Errorf("Gather(%d)[%d] = %v, want %v", r, j, buf[j], want[j])
			}
			if (p&(1<<j) != 0) != want[j] {
				t.Errorf("Pattern(%d) bit %d = %v, want %v", r, j, p&(1<<j) != 0, want[j])
			}
		}
	}
}

func TestFailureMatrixValidation(t *testing.T) {
	assets := []string{"a", "b"}
	e := randomEnsemble(t, 3, 10, assets)
	if _, err := engine.NewFailureMatrix(nil, assets); err == nil {
		t.Error("nil source should error")
	}
	if _, err := engine.NewFailureMatrix(e, nil); err == nil {
		t.Error("no assets should error")
	}
	if _, err := engine.NewFailureMatrix(e, []string{"a", "a"}); err == nil {
		t.Error("duplicate asset should error")
	}
	if _, err := engine.NewFailureMatrix(e, []string{"zzz"}); err == nil {
		t.Error("unknown asset should error")
	}
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Columns([]string{"zzz"}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestFailureCount(t *testing.T) {
	assets := []string{"a", "b"}
	e := randomEnsemble(t, 4, 300, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	for c, id := range assets {
		rate, err := e.FailureRate(id)
		if err != nil {
			t.Fatal(err)
		}
		want := int(rate*float64(e.Size()) + 0.5)
		if got := m.FailureCount(c); got != want {
			t.Errorf("FailureCount(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestWorkers(t *testing.T) {
	if got := engine.Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := engine.Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := engine.Workers(-5); got != runtime.NumCPU() {
		t.Errorf("Workers(-5) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		for _, n := range []int{0, 1, 7, 100} {
			hits := make([]int32, n)
			err := engine.ForEach(workers, n, func(i int) error {
				atomic.AddInt32(&hits[i], 1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Errorf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := engine.ForEach(workers, 50, func(i int) error {
			if i == 13 {
				return fmt.Errorf("index %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
	}
}

// TestCellCountsAgreeAcrossWorkerCounts checks the engine's central
// determinism claim: the same cell evaluated with different worker
// counts (and thus different chunkings) produces identical counts.
func TestCellCountsAgreeAcrossWorkerCounts(t *testing.T) {
	assets := []string{"p", "s", "d"}
	e := randomEnsemble(t, 5, 500, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	cfg := topology.NewConfig666("p", "s", "d")
	for _, sc := range threat.Scenarios() {
		var want engine.Counts
		for wi, workers := range []int{1, 2, 3, runtime.NumCPU(), 0} {
			got, err := engine.CellCounts(m, cfg, sc.Capability(), workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.Total() != e.Size() {
				t.Fatalf("%v workers=%d: total %d, want %d", sc, workers, got.Total(), e.Size())
			}
			if wi == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%v workers=%d: counts %v != reference %v", sc, workers, got, want)
			}
		}
	}
}

func TestCellProfileMatchesCounts(t *testing.T) {
	assets := []string{"p", "s"}
	e := randomEnsemble(t, 6, 120, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	cfg := topology.NewConfig66("p", "s")
	cap := threat.HurricaneIntrusion.Capability()
	counts, err := engine.CellCounts(m, cfg, cap, 1)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := engine.CellProfile(m, cfg, cap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if profile.Total() != counts.Total() {
		t.Fatalf("profile total %d, counts total %d", profile.Total(), counts.Total())
	}
	for _, s := range opstate.States() {
		want := float64(counts[int(s)]) / float64(counts.Total())
		if got := profile.Probability(s); got != want {
			t.Errorf("P(%v) = %v, want %v", s, got, want)
		}
	}
}
