package engine_test

// Allocation benchmarks for the engine hot path: the per-realization
// loop of AddRange must not allocate (run with -benchmem to verify
// 0 allocs/op).

import (
	"testing"

	"compoundthreat/internal/engine"
	"compoundthreat/internal/obs"
	"compoundthreat/internal/threat"
	"compoundthreat/internal/topology"
)

func benchFixture(b *testing.B) (*engine.FailureMatrix, topology.Config, threat.Capability) {
	assets := []string{"p", "s", "d"}
	e := randomEnsemble(b, 42, 1000, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		b.Fatal(err)
	}
	return m, topology.NewConfig666("p", "s", "d"), threat.HurricaneIntrusionIsolation.Capability()
}

// BenchmarkAddRange measures the memoized inner loop over 1000
// realizations. The memo is warmed before the timer so the steady-state
// figure is pure bit-extraction plus a table lookup: 0 allocs/op.
func BenchmarkAddRange(b *testing.B) {
	m, cfg, cap := benchFixture(b)
	ev, err := engine.NewEvaluator(m, cfg, cap)
	if err != nil {
		b.Fatal(err)
	}
	var warm engine.Counts
	if err := ev.AddRange(&warm, 0, m.Rows()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counts engine.Counts
		if err := ev.AddRange(&counts, 0, m.Rows()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAddRangeMetrics is BenchmarkAddRange with a live obs
// recorder: the memo statistics are flushed with three atomic adds per
// range, so the loop must still report 0 allocs/op and stay within
// noise of the uninstrumented figure.
func BenchmarkAddRangeMetrics(b *testing.B) {
	m, cfg, cap := benchFixture(b)
	obs.Enable(obs.New())
	defer obs.Enable(nil)
	ev, err := engine.NewEvaluator(m, cfg, cap)
	if err != nil {
		b.Fatal(err)
	}
	var warm engine.Counts
	if err := ev.AddRange(&warm, 0, m.Rows()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counts engine.Counts
		if err := ev.AddRange(&counts, 0, m.Rows()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCellCounts measures a full cold cell evaluation, including
// evaluator construction and memo fill.
func BenchmarkCellCounts(b *testing.B) {
	m, cfg, cap := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.CellCounts(m, cfg, cap, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompress measures deduplicating the 1000-realization
// matrix itself — the one-off cost a sweep pays before its cells drop
// to O(distinct rows).
func BenchmarkCompress(b *testing.B) {
	m, _, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Compress(m, 1)
	}
}

// BenchmarkAddWeighted measures the weighted inner loop over the
// distinct rows of the compressed 1000-realization matrix. Like
// AddRange, the warmed steady state is bit-extraction plus a table
// lookup — 0 allocs/op — but over ~8 distinct patterns instead of
// 1000 realizations.
func BenchmarkAddWeighted(b *testing.B) {
	m, cfg, cap := benchFixture(b)
	cm := engine.Compress(m, 1)
	ev, err := engine.NewEvaluator(m, cfg, cap)
	if err != nil {
		b.Fatal(err)
	}
	var warm engine.Counts
	if err := ev.AddWeighted(&warm, cm, 0, cm.DistinctRows()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counts engine.Counts
		if err := ev.AddWeighted(&counts, cm, 0, cm.DistinctRows()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCellCountsCompressed measures a full cold compressed cell:
// evaluator construction, memo fill, and the weighted walk. Compare
// against BenchmarkCellCounts for the per-cell dedup win once the
// compression cost is amortized across a sweep.
func BenchmarkCellCountsCompressed(b *testing.B) {
	m, cfg, cap := benchFixture(b)
	cm := engine.Compress(m, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.CellCountsCompressed(cm, cfg, cap, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatrixCompile measures compiling the 1000-realization
// failure matrix itself.
func BenchmarkMatrixCompile(b *testing.B) {
	assets := []string{"p", "s", "d"}
	e := randomEnsemble(b, 42, 1000, assets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.NewFailureMatrix(e, assets); err != nil {
			b.Fatal(err)
		}
	}
}
