package engine_test

// Tests for the engine's observability hooks: when a recorder is
// enabled the memo, matrix, and worker-pool metrics must add up
// exactly; when it is disabled the hot path must stay allocation-free
// (the contract the 0-allocs benchmarks measure).

import (
	"testing"

	"compoundthreat/internal/engine"
	"compoundthreat/internal/obs"
	"compoundthreat/internal/threat"
	"compoundthreat/internal/topology"
)

// withRecorder installs a fresh recorder for the test and restores the
// disabled default afterwards.
func withRecorder(t *testing.T) *obs.Recorder {
	t.Helper()
	rec := obs.New()
	obs.Enable(rec)
	t.Cleanup(func() { obs.Enable(nil) })
	return rec
}

// TestEvaluatorMemoMetrics checks the memo accounting: hits + misses
// equals realizations, and misses equals the number of distinct
// flooded patterns (each filled exactly once).
func TestEvaluatorMemoMetrics(t *testing.T) {
	assets := []string{"p", "s", "d"}
	e := randomEnsemble(t, 7, 500, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	rec := withRecorder(t)
	cfg := topology.NewConfig666("p", "s", "d")
	cap := threat.HurricaneIntrusionIsolation.Capability()
	ev, err := engine.NewEvaluator(m, cfg, cap)
	if err != nil {
		t.Fatal(err)
	}
	var counts engine.Counts
	if err := ev.AddRange(&counts, 0, m.Rows()); err != nil {
		t.Fatal(err)
	}

	cols, err := m.Columns(assets)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]bool{}
	for r := 0; r < m.Rows(); r++ {
		distinct[m.Pattern(r, cols)] = true
	}

	hits := rec.Counter("engine.memo_hits").Value()
	misses := rec.Counter("engine.memo_misses").Value()
	if misses != int64(len(distinct)) {
		t.Errorf("memo misses = %d, want %d distinct patterns", misses, len(distinct))
	}
	if hits+misses != int64(m.Rows()) {
		t.Errorf("hits %d + misses %d != %d realizations", hits, misses, m.Rows())
	}
	if got := rec.Counter("engine.realizations").Value(); got != int64(m.Rows()) {
		t.Errorf("realizations counter = %d, want %d", got, m.Rows())
	}
	// The analyzer runs exactly once per memo miss on this path.
	if evals := rec.Counter("attack.analyzer_evals").Value(); evals != misses {
		t.Errorf("analyzer evals = %d, want %d (one per miss)", evals, misses)
	}
}

// TestMatrixCompileMetrics checks the compile-phase span and counters.
func TestMatrixCompileMetrics(t *testing.T) {
	assets := []string{"a", "b", "c", "d"}
	e := randomEnsemble(t, 3, 120, assets)
	rec := withRecorder(t)
	if _, err := engine.NewFailureMatrix(e, assets); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("engine.matrices_compiled").Value(); got != 1 {
		t.Errorf("matrices_compiled = %d, want 1", got)
	}
	if got := rec.Counter("engine.matrix_rows").Value(); got != 120 {
		t.Errorf("matrix_rows = %d, want 120", got)
	}
	if got := rec.Counter("engine.matrix_cells").Value(); got != 480 {
		t.Errorf("matrix_cells = %d, want 480", got)
	}
	rep := rec.Report("test", nil)
	found := false
	for _, p := range rep.Phases {
		if p.Name == "engine.matrix_compile" && p.Count == 1 && p.TotalNS > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no engine.matrix_compile phase in report: %+v", rep.Phases)
	}
}

// TestForEachMetrics checks the worker-pool accounting for both the
// sequential and the parallel path.
func TestForEachMetrics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := obs.New()
		obs.Enable(rec)
		const n = 37
		if err := engine.ForEach(workers, n, func(i int) error { return nil }); err != nil {
			obs.Enable(nil)
			t.Fatal(err)
		}
		obs.Enable(nil)
		if got := rec.Counter("engine.foreach_calls").Value(); got != 1 {
			t.Errorf("workers=%d: foreach_calls = %d, want 1", workers, got)
		}
		if got := rec.Counter("engine.foreach_tasks").Value(); got != n {
			t.Errorf("workers=%d: foreach_tasks = %d, want %d", workers, got, n)
		}
		if got := rec.Counter("engine.foreach_workers").Value(); got != int64(workers) {
			t.Errorf("workers=%d: foreach_workers = %d", workers, got)
		}
		h := rec.Histogram("engine.tasks_per_worker")
		if h.Count() != int64(workers) {
			t.Errorf("workers=%d: tasks_per_worker count = %d", workers, h.Count())
		}
		if h.Sum() != n {
			t.Errorf("workers=%d: tasks_per_worker sum = %d, want %d", workers, h.Sum(), n)
		}
		if busy := rec.Timer("engine.worker_busy"); busy.Count() != int64(workers) {
			t.Errorf("workers=%d: worker_busy count = %d", workers, busy.Count())
		}
	}
}

// TestInstrumentedResultsUnchanged cross-checks that enabling the
// recorder does not change any computed outcome.
func TestInstrumentedResultsUnchanged(t *testing.T) {
	assets := []string{"p", "s", "d"}
	e := randomEnsemble(t, 11, 400, assets)
	cfg := topology.NewConfig666("p", "s", "d")
	cap := threat.HurricaneIntrusionIsolation.Capability()

	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := engine.CellCounts(m, cfg, cap, 2)
	if err != nil {
		t.Fatal(err)
	}

	withRecorder(t)
	m2, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := engine.CellCounts(m2, cfg, cap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plain != instrumented {
		t.Fatalf("instrumented counts %v != plain counts %v", instrumented, plain)
	}
}

// TestAddRangeNoAllocsDisabled pins the hard requirement: with
// observability off, the evaluator's realization loop performs zero
// allocations.
func TestAddRangeNoAllocsDisabled(t *testing.T) {
	assets := []string{"p", "s", "d"}
	e := randomEnsemble(t, 42, 300, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := engine.NewEvaluator(m, topology.NewConfig666("p", "s", "d"),
		threat.HurricaneIntrusionIsolation.Capability())
	if err != nil {
		t.Fatal(err)
	}
	var warm engine.Counts
	if err := ev.AddRange(&warm, 0, m.Rows()); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		var counts engine.Counts
		if err := ev.AddRange(&counts, 0, m.Rows()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AddRange allocated %v times per run with observability disabled", allocs)
	}
}

// TestAddRangeNoAllocsEnabled: the same loop stays allocation-free
// with a live recorder — metrics are atomics resolved at construction.
func TestAddRangeNoAllocsEnabled(t *testing.T) {
	assets := []string{"p", "s", "d"}
	e := randomEnsemble(t, 42, 300, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	withRecorder(t)
	ev, err := engine.NewEvaluator(m, topology.NewConfig666("p", "s", "d"),
		threat.HurricaneIntrusionIsolation.Capability())
	if err != nil {
		t.Fatal(err)
	}
	var warm engine.Counts
	if err := ev.AddRange(&warm, 0, m.Rows()); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		var counts engine.Counts
		if err := ev.AddRange(&counts, 0, m.Rows()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AddRange allocated %v times per run with observability enabled", allocs)
	}
}
