package engine_test

import (
	"testing"

	"compoundthreat/internal/engine"
	"compoundthreat/internal/hazard"
	"compoundthreat/internal/threat"
	"compoundthreat/internal/topology"
)

// standardConfigs returns the paper's five configuration families over
// a three-asset placement, for sweeping tests.
func standardConfigs(t testing.TB, primary, second, dc string) []topology.Config {
	t.Helper()
	configs, err := topology.StandardConfigs(topology.Placement{Primary: primary, Second: second, DataCenter: dc})
	if err != nil {
		t.Fatal(err)
	}
	return configs
}

// TestCompressInvariants checks the structural contract of Compress:
// weights sum to the input rows, every distinct row reproduces a source
// row bit-for-bit, distinct rows appear in first-occurrence order, and
// no two distinct rows are equal.
func TestCompressInvariants(t *testing.T) {
	assets := []string{"a", "b", "c", "d", "e"}
	for _, seed := range []int64{1, 2, 3} {
		e := randomEnsemble(t, seed, 400, assets)
		m, err := engine.NewFailureMatrix(e, assets)
		if err != nil {
			t.Fatal(err)
		}
		cols, err := m.Columns(assets)
		if err != nil {
			t.Fatal(err)
		}
		cm := engine.Compress(m, 1)
		if cm.Source() != m {
			t.Fatal("Source() is not the input matrix")
		}
		if cm.Rows() != m.Rows() {
			t.Fatalf("Rows() = %d, want %d", cm.Rows(), m.Rows())
		}
		sum := 0
		for i := 0; i < cm.DistinctRows(); i++ {
			if cm.Weight(i) < 1 {
				t.Fatalf("Weight(%d) = %d", i, cm.Weight(i))
			}
			sum += cm.Weight(i)
		}
		if sum != m.Rows() {
			t.Errorf("weights sum to %d, want %d", sum, m.Rows())
		}
		if want := float64(cm.DistinctRows()) / float64(m.Rows()); cm.Ratio() != want {
			t.Errorf("Ratio() = %v, want %v", cm.Ratio(), want)
		}
		// Walk the source rows: each must map to exactly one distinct
		// pattern, and the first time each distinct index is seen must be
		// in increasing order (first-occurrence order). Re-derive the
		// weights as a cross-check.
		index := map[uint64]int{}
		weights := make([]int, cm.DistinctRows())
		next := 0
		for r := 0; r < m.Rows(); r++ {
			p := m.Pattern(r, cols)
			d, ok := index[p]
			if !ok {
				d = next
				next++
				index[p] = d
				if d >= cm.DistinctRows() {
					t.Fatalf("row %d introduces pattern %d beyond DistinctRows %d", r, d, cm.DistinctRows())
				}
				if got := cm.Pattern(d, cols); got != p {
					t.Fatalf("distinct row %d pattern = %b, want first-occurrence %b", d, got, p)
				}
			}
			weights[d]++
		}
		if next != cm.DistinctRows() {
			t.Fatalf("source has %d distinct patterns, Compress found %d", next, cm.DistinctRows())
		}
		for d, w := range weights {
			if cm.Weight(d) != w {
				t.Errorf("Weight(%d) = %d, want %d", d, cm.Weight(d), w)
			}
		}
		// Gather must agree with Pattern on every distinct row.
		var buf []bool
		for d := 0; d < cm.DistinctRows(); d++ {
			buf = cm.Gather(buf[:0], d, cols)
			p := cm.Pattern(d, cols)
			for j := range cols {
				if buf[j] != (p&(1<<uint(j)) != 0) {
					t.Errorf("Gather(%d)[%d] = %v disagrees with Pattern bit", d, j, buf[j])
				}
			}
		}
	}
}

// TestCompressDeterministicAcrossWorkers: only the hashing pass
// parallelizes, so the distinct-row order and weights must be identical
// for every worker count.
func TestCompressDeterministicAcrossWorkers(t *testing.T) {
	assets := []string{"a", "b", "c", "d"}
	e := randomEnsemble(t, 9, 600, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := m.Columns(assets)
	if err != nil {
		t.Fatal(err)
	}
	want := engine.Compress(m, 1)
	for _, workers := range []int{2, 3, 8, 0} {
		got := engine.Compress(m, workers)
		if got.DistinctRows() != want.DistinctRows() {
			t.Fatalf("workers=%d: %d distinct rows, want %d", workers, got.DistinctRows(), want.DistinctRows())
		}
		for d := 0; d < want.DistinctRows(); d++ {
			if got.Weight(d) != want.Weight(d) || got.Pattern(d, cols) != want.Pattern(d, cols) {
				t.Errorf("workers=%d distinct row %d: (pattern %b, weight %d), want (%b, %d)",
					workers, d, got.Pattern(d, cols), got.Weight(d), want.Pattern(d, cols), want.Weight(d))
			}
		}
	}
}

// TestCellCountsCompressedMatchesCellCounts is the weighted path's
// central claim: for random ensembles, every configuration family, and
// every scenario, evaluating distinct patterns with multiplicities is
// bit-identical to walking all realizations — for any worker count on
// either side.
func TestCellCountsCompressedMatchesCellCounts(t *testing.T) {
	assets := []string{"p", "s", "d"}
	configs := standardConfigs(t, "p", "s", "d")
	for _, seed := range []int64{10, 11, 12} {
		e := randomEnsemble(t, seed, 350, assets)
		m, err := engine.NewFailureMatrix(e, assets)
		if err != nil {
			t.Fatal(err)
		}
		cm := engine.Compress(m, 0)
		for _, cfg := range configs {
			for _, sc := range threat.Scenarios() {
				want, err := engine.CellCounts(m, cfg, sc.Capability(), 1)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 8, 0} {
					got, err := engine.CellCountsCompressed(cm, cfg, sc.Capability(), workers)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("seed=%d %s/%v workers=%d: compressed %v != reference %v",
							seed, cfg.Name, sc, workers, got, want)
					}
				}
			}
		}
	}
}

// TestCompressAllDistinct is the adversarial worst case: an ensemble
// where every realization's failure pattern is unique. Compression must
// degrade gracefully — ratio exactly 1.0, every weight 1 — and the
// weighted path must still match the plain one.
func TestCompressAllDistinct(t *testing.T) {
	assetIDs := make([]string, 10)
	for i := range assetIDs {
		assetIDs[i] = string(rune('a' + i))
	}
	const realizations = 300
	cfg := hazard.OahuScenario()
	cfg.Realizations = realizations
	rows := make([][]float64, realizations)
	for r := range rows {
		rows[r] = make([]float64, len(assetIDs))
		for i := range rows[r] {
			// Row r's failure pattern is the binary encoding of r, so all
			// rows are pairwise distinct.
			if r>>uint(i)&1 == 1 {
				rows[r][i] = 1.0
			}
		}
	}
	e, err := hazard.NewEnsembleFromDepths(cfg, assetIDs, rows)
	if err != nil {
		t.Fatal(err)
	}
	m, err := engine.NewFailureMatrix(e, assetIDs)
	if err != nil {
		t.Fatal(err)
	}
	cm := engine.Compress(m, 0)
	if cm.DistinctRows() != realizations {
		t.Fatalf("DistinctRows = %d, want %d (all rows distinct)", cm.DistinctRows(), realizations)
	}
	if cm.Ratio() != 1.0 {
		t.Fatalf("Ratio = %v, want exactly 1.0", cm.Ratio())
	}
	for i := 0; i < cm.DistinctRows(); i++ {
		if cm.Weight(i) != 1 {
			t.Fatalf("Weight(%d) = %d, want 1", i, cm.Weight(i))
		}
	}
	config := topology.NewConfig666("a", "b", "c")
	for _, sc := range threat.Scenarios() {
		want, err := engine.CellCounts(m, config, sc.Capability(), 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.CellCountsCompressed(cm, config, sc.Capability(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%v: compressed %v != reference %v", sc, got, want)
		}
	}
}

// TestAddWeightedRejectsForeignMatrix: pairing a compressed view with
// an evaluator built over a different matrix is an error, not silent
// garbage.
func TestAddWeightedRejectsForeignMatrix(t *testing.T) {
	assets := []string{"p", "s"}
	e1 := randomEnsemble(t, 31, 50, assets)
	e2 := randomEnsemble(t, 32, 50, assets)
	m1, err := engine.NewFailureMatrix(e1, assets)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := engine.NewFailureMatrix(e2, assets)
	if err != nil {
		t.Fatal(err)
	}
	cfg := topology.NewConfig66("p", "s")
	capability := threat.Hurricane.Capability()
	ev, err := engine.NewEvaluator(m1, cfg, capability)
	if err != nil {
		t.Fatal(err)
	}
	cm := engine.Compress(m2, 1)
	var counts engine.Counts
	if err := ev.AddWeighted(&counts, cm, 0, cm.DistinctRows()); err == nil {
		t.Fatal("AddWeighted accepted a compression of a different matrix")
	}
}

// TestEvaluatorPoolReuse: a pooled evaluator reset to a new cell must
// produce the same counts as a fresh one, for a sequence of differing
// (config, capability) cells.
func TestEvaluatorPoolReuse(t *testing.T) {
	assets := []string{"p", "s", "d"}
	e := randomEnsemble(t, 41, 200, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	cm := engine.Compress(m, 1)
	var pool engine.EvaluatorPool
	for _, cfg := range standardConfigs(t, "p", "s", "d") {
		for _, sc := range threat.Scenarios() {
			want, err := engine.CellCountsCompressed(cm, cfg, sc.Capability(), 1)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := pool.Get(m, cfg, sc.Capability())
			if err != nil {
				t.Fatal(err)
			}
			var got engine.Counts
			if err := ev.AddWeighted(&got, cm, 0, cm.DistinctRows()); err != nil {
				t.Fatal(err)
			}
			pool.Put(ev)
			if got != want {
				t.Errorf("%s/%v: pooled counts %v != fresh %v", cfg.Name, sc, got, want)
			}
		}
	}
}
