// Package engine is the parallel, allocation-free core of the
// compound-threat analysis pipeline. The paper's Figure 5 sweep is
// embarrassingly parallel — every hurricane realization is evaluated
// independently, and every figure, placement candidate, and power-sweep
// point is an independent (configuration, scenario) cell — so the
// engine splits the work along both axes:
//
//   - A FailureMatrix compiles a disaster ensemble against a site list
//     once: asset IDs are resolved to column indices up front and the
//     per-realization failure flags are bit-packed into uint64 words,
//     so the realization loop does no map lookups and no allocations.
//   - An Evaluator walks the matrix for one (configuration, attacker
//     capability) cell with a reusable attack.Analyzer, memoizing the
//     worst-case outcome per flooded-site pattern (a configuration
//     with S sites has at most 2^S patterns, so a 1000-realization
//     sweep collapses to a handful of attack evaluations plus pure
//     bit-twiddling).
//   - ForEach is the bounded worker pool used for realization chunks,
//     (configuration, scenario) cells, placement candidates, and
//     power-sweep points.
//
// All results are deterministic and bit-identical to the sequential
// reference implementations: outcomes are integer state counts, chunk
// results are merged in fixed index order, and the greedy attacker is a
// pure function of the flooded pattern.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"compoundthreat/internal/obs"
)

// Source is the minimal ensemble view the engine compiles from. It is
// a subset of analysis.DisasterEnsemble, so any disaster ensemble in
// this module satisfies it. Implementations must be safe for
// concurrent readers (all ensembles in this module are: they are
// immutable after generation).
type Source interface {
	// Size returns the number of realizations.
	Size() int
	// FailureVector returns, for realization r, the failed flags for
	// the given asset IDs in order.
	FailureVector(r int, assetIDs []string) ([]bool, error)
}

// VectorAppender is the optional allocation-free variant of
// Source.FailureVector: implementations append the flags to dst and
// return the extended slice. The engine uses it when available so
// matrix compilation reuses one buffer for every realization.
type VectorAppender interface {
	AppendFailureVector(dst []bool, r int, assetIDs []string) ([]bool, error)
}

// ColumnAppender is the optional column-major accessor: implementations
// append one asset's failure flags for every realization as a
// little-endian bitset (bit r%64 of word r/64 is realization r; bits
// past the realization count are ignored). The engine prefers it for
// matrix compilation — the asset resolves once per column instead of
// once per (realization, asset) cell, and the transpose into row-major
// words walks only the set bits.
type ColumnAppender interface {
	AppendFailureBits(dst []uint64, assetID string) ([]uint64, error)
}

// Workers resolves a worker-count option: values above zero are used
// as given, zero (the default) means runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ForEachCtx is ForEach with request-scoped tracing: when ctx carries
// a trace span (obs.SpanFromContext), the whole fan-out is recorded as
// an "engine.foreach" child span, so a slow request's trace shows the
// time spent inside the parallel sweep. With tracing off it costs one
// nil check over ForEach.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	sp := obs.SpanFromContext(ctx).StartChild("engine.foreach")
	err := ForEach(workers, n, fn)
	sp.End()
	return err
}

// ForEach runs fn(i) for every i in [0, n) across up to workers
// goroutines (0 = NumCPU). Items are claimed from an atomic counter,
// so callers must make fn(i) write only to its own slot of any shared
// output — then results are deterministic regardless of scheduling.
// The first error observed stops the remaining work and is returned.
//
// When observability is enabled (obs.Enable), every call records its
// wall time ("engine.foreach_wall"), per-worker busy time
// ("engine.worker_busy"), and a tasks-per-worker histogram; with it
// disabled the pool is unchanged and allocation-free.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	rec := obs.Default()
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if rec != nil {
		defer rec.StartSpan("engine.foreach_wall").End()
		rec.Counter("engine.foreach_calls").Add(1)
		rec.Counter("engine.foreach_tasks").Add(int64(n))
		rec.Counter("engine.foreach_workers").Add(int64(workers))
	}
	if workers <= 1 {
		if rec != nil {
			defer rec.StartSpan("engine.worker_busy").End()
			rec.Histogram("engine.tasks_per_worker").Observe(int64(n))
		}
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tasks int64
			var start time.Time
			if rec != nil {
				start = time.Now()
				defer func() {
					rec.Timer("engine.worker_busy").Record(time.Since(start))
					rec.Histogram("engine.tasks_per_worker").Observe(tasks)
				}()
			}
			for {
				if failed.Load() {
					return
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				tasks++
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// chunk is a half-open realization range.
type chunk struct{ lo, hi int }

// chunks splits [0, n) into at most k near-equal ranges.
func chunks(n, k int) []chunk {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	out := make([]chunk, 0, k)
	size, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out = append(out, chunk{lo, hi})
		lo = hi
	}
	return out
}
