package engine

// Word-parallel mask evaluation. The memoized Evaluator already caps
// attack-analyzer work at 2^S evaluations per cell, but its per-pattern
// loop still extracts a packed pattern column-by-column and probes the
// memo table once per distinct row. For *symmetric* configurations —
// where the worst-case outcome depends only on how many of the
// configuration's sites the disaster took out, not which ones — the
// whole attack model collapses to an (S+1)-entry table indexed by
// flooded-site count, and a cell evaluation becomes
//
//	counts[byCount[popcount(pattern & siteMask)]] += weight
//
// per distinct row: one AND, one popcount, two table reads. MaskKernel
// is that loop; CountKernel is its incremental form for k-site search,
// where placements grow one site at a time. Both are cross-checked
// bit-identical to attack.Analyzer.Evaluate over exhaustive small
// universes in kernel_test.go.

import (
	"errors"
	"fmt"
	"math/bits"

	"compoundthreat/internal/attack"
	"compoundthreat/internal/obs"
	"compoundthreat/internal/opstate"
	"compoundthreat/internal/threat"
	"compoundthreat/internal/topology"
)

// ErrNotSymmetric reports a configuration whose outcome is not a pure
// function of its flooded-site count.
var ErrNotSymmetric = errors.New("engine: configuration outcome is not a pure function of flooded-site count")

// SymmetricConfig reports whether the worst-case outcome of cfg
// depends only on the *number* of flooded sites. SingleSite trivially
// does. ActiveReplication with a uniform replica count does too: every
// greedy-attack rule (compromise placement, isolation order, intrusion
// spending) and the site-quorum check count sites without
// distinguishing them. PrimaryBackup does not — a flooded cold backup
// is harmless while a flooded primary costs the activation delay — and
// neither does a non-uniform replica layout, where intrusion packing
// depends on which sites survive.
func SymmetricConfig(cfg topology.Config) bool {
	switch cfg.Arch {
	case topology.SingleSite:
		return len(cfg.Sites) == 1
	case topology.ActiveReplication:
		if len(cfg.Sites) == 0 {
			return false
		}
		r := cfg.Sites[0].Replicas
		for _, s := range cfg.Sites[1:] {
			if s.Replicas != r {
				return false
			}
		}
		return true
	}
	return false
}

// StateByCount tabulates the worst-case operational state of a
// symmetric configuration by flooded-site count: entry c is the
// outcome with exactly c of the configuration's sites flooded. The
// table is the entire attack model a kernel needs — S+1 analyzer
// evaluations replace one per distinct pattern. The configuration and
// capability are validated here, once, so kernel binds can skip
// revalidation.
func StateByCount(cfg topology.Config, capability threat.Capability) ([]opstate.State, error) {
	if !SymmetricConfig(cfg) {
		return nil, ErrNotSymmetric
	}
	an, err := attack.NewAnalyzer(cfg, capability)
	if err != nil {
		return nil, err
	}
	out := make([]opstate.State, len(cfg.Sites)+1)
	for c := range out {
		// The canonical c-count pattern: the first c sites flooded.
		s, err := an.EvaluateMask(uint64(1)<<uint(c) - 1)
		if err != nil {
			return nil, err
		}
		out[c] = s
	}
	return out, nil
}

// MaskKernel evaluates placements against a compressed matrix with
// word-parallel arithmetic. Bind resolves a placement's site assets
// into a stride-wide column bitmask once; AddWeighted then classifies
// every distinct pattern from the popcount of pattern AND mask,
// indexed into a StateByCount table — no analyzer calls, no memo
// probes, no per-pattern function calls, and, unlike Evaluator.Reset,
// no per-placement configuration revalidation. Results are
// bit-identical to Evaluator.AddWeighted for symmetric configurations.
// Not safe for concurrent use; give each worker its own kernel.
type MaskKernel struct {
	cm      *CompressedMatrix
	byCount []opstate.State
	mask    []uint64
	// Observability counters, resolved once at construction; nil (and
	// therefore free) when instrumentation is disabled.
	placements *obs.Counter
	patterns   *obs.Counter
}

// NewMaskKernel returns an unbound kernel; Bind it before use.
func NewMaskKernel() *MaskKernel {
	rec := obs.Default()
	return &MaskKernel{
		placements: rec.Counter("engine.kernel_placements"),
		patterns:   rec.Counter("engine.kernel_patterns"),
	}
}

// Bind rebinds the kernel to (compressed matrix, outcome table,
// placement sites), reusing the mask storage. byCount must come from
// StateByCount for a configuration whose site set is exactly siteIDs;
// site order is irrelevant — symmetry is order-blind.
func (k *MaskKernel) Bind(cm *CompressedMatrix, byCount []opstate.State, siteIDs []string) error {
	if err := k.bindStart(cm, byCount, len(siteIDs)); err != nil {
		return err
	}
	for _, id := range siteIDs {
		if err := k.bindSite(id); err != nil {
			return err
		}
	}
	return nil
}

// BindConfig is Bind over a configuration's sites, sparing callers the
// intermediate ID slice.
func (k *MaskKernel) BindConfig(cm *CompressedMatrix, byCount []opstate.State, cfg topology.Config) error {
	if err := k.bindStart(cm, byCount, len(cfg.Sites)); err != nil {
		return err
	}
	for _, s := range cfg.Sites {
		if err := k.bindSite(s.AssetID); err != nil {
			return err
		}
	}
	return nil
}

func (k *MaskKernel) bindStart(cm *CompressedMatrix, byCount []opstate.State, sites int) error {
	if len(byCount) != sites+1 {
		return fmt.Errorf("engine: outcome table has %d entries for %d sites, want %d", len(byCount), sites, sites+1)
	}
	if cap(k.mask) >= cm.stride {
		k.mask = k.mask[:cm.stride]
		for i := range k.mask {
			k.mask[i] = 0
		}
	} else {
		k.mask = make([]uint64, cm.stride)
	}
	k.cm, k.byCount = cm, byCount
	k.placements.Add(1)
	return nil
}

func (k *MaskKernel) bindSite(id string) error {
	col, ok := k.cm.src.Column(id)
	if !ok {
		return fmt.Errorf("engine: asset %q not in failure matrix", id)
	}
	w, bit := col>>6, uint64(1)<<uint(col&63)
	if k.mask[w]&bit != 0 {
		return fmt.Errorf("engine: duplicate site asset %q", id)
	}
	k.mask[w] |= bit
	return nil
}

// AddWeighted classifies distinct rows [lo, hi) into counts, adding
// each row's multiplicity to its outcome bucket — the word-parallel
// counterpart of Evaluator.AddWeighted. The loop body performs no
// allocations and no calls.
func (k *MaskKernel) AddWeighted(counts *Counts, lo, hi int) {
	cm := k.cm
	if cm.stride == 1 {
		m0 := k.mask[0]
		for i := lo; i < hi; i++ {
			counts[k.byCount[bits.OnesCount64(cm.bits[i]&m0)]] += cm.weights[i]
		}
	} else {
		for i := lo; i < hi; i++ {
			base := i * cm.stride
			c := 0
			for w, mw := range k.mask {
				c += bits.OnesCount64(cm.bits[base+w] & mw)
			}
			counts[k.byCount[c]] += cm.weights[i]
		}
	}
	k.patterns.Add(int64(hi - lo))
}

// CountKernel is the incremental flood-count view a k-site search
// needs. It extracts each candidate's column as a bitset over the
// distinct rows and maintains the per-row flooded-site count of a
// placement grown and shrunk one candidate at a time (Add/Remove).
// CountsWith scores "current placement plus one more candidate"
// without mutating it — the greedy gain evaluation — and is safe to
// call from concurrent goroutines as long as no Add, Remove, or Clear
// runs concurrently.
type CountKernel struct {
	cm    *CompressedMatrix
	cols  [][]uint64 // per candidate: failure bitset over distinct rows
	count []uint16   // flooded sites per distinct row, current placement
}

// NewCountKernel builds the per-candidate bitsets for the given matrix
// columns. Candidate j of the kernel is cols[j].
func NewCountKernel(cm *CompressedMatrix, cols []int) (*CountKernel, error) {
	d := cm.DistinctRows()
	words := (d + 63) / 64
	ck := &CountKernel{cm: cm, count: make([]uint16, d)}
	ck.cols = make([][]uint64, len(cols))
	backing := make([]uint64, words*len(cols))
	for j, col := range cols {
		if col < 0 || col >= len(cm.src.ids) {
			return nil, fmt.Errorf("engine: column %d out of range [0, %d)", col, len(cm.src.ids))
		}
		cb := backing[j*words : (j+1)*words]
		w, bit := col>>6, uint64(1)<<uint(col&63)
		for i := 0; i < d; i++ {
			if cm.bits[i*cm.stride+w]&bit != 0 {
				cb[i>>6] |= 1 << uint(i&63)
			}
		}
		ck.cols[j] = cb
	}
	return ck, nil
}

// Matrix returns the compressed matrix the kernel runs over.
func (ck *CountKernel) Matrix() *CompressedMatrix { return ck.cm }

// Candidates returns the number of candidate columns.
func (ck *CountKernel) Candidates() int { return len(ck.cols) }

// FloodBit returns 1 when candidate j is flooded in distinct row i.
func (ck *CountKernel) FloodBit(j, i int) uint16 {
	return uint16(ck.cols[j][i>>6] >> uint(i&63) & 1)
}

// FloodedCounts returns the live per-distinct-row flooded counts of
// the current placement. Read-only; valid until the next Add, Remove,
// or Clear.
func (ck *CountKernel) FloodedCounts() []uint16 { return ck.count }

// Add floods candidate j in the current placement.
func (ck *CountKernel) Add(j int) {
	cb := ck.cols[j]
	for i := range ck.count {
		ck.count[i] += uint16(cb[i>>6] >> uint(i&63) & 1)
	}
}

// Remove undoes Add(j).
func (ck *CountKernel) Remove(j int) {
	cb := ck.cols[j]
	for i := range ck.count {
		ck.count[i] -= uint16(cb[i>>6] >> uint(i&63) & 1)
	}
}

// Clear empties the current placement.
func (ck *CountKernel) Clear() {
	for i := range ck.count {
		ck.count[i] = 0
	}
}

// Counts classifies the current placement's distinct rows into counts
// through a StateByCount table for the placement's size.
func (ck *CountKernel) Counts(byCount []opstate.State, counts *Counts) {
	weights := ck.cm.weights
	for i, c := range ck.count {
		counts[byCount[c]] += weights[i]
	}
}

// CountsWith is Counts for the current placement plus candidate j,
// without mutating the placement. byCount must cover size+1 sites.
func (ck *CountKernel) CountsWith(j int, byCount []opstate.State, counts *Counts) {
	weights := ck.cm.weights
	cb := ck.cols[j]
	for i, c := range ck.count {
		c += uint16(cb[i>>6] >> uint(i&63) & 1)
		counts[byCount[c]] += weights[i]
	}
}
