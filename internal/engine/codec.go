package engine

// Wire codec for compiled views. A CompressedMatrix is the expensive
// artifact of the serving tier — minutes of ensemble data distilled
// into a bit-packed matrix plus its deduplicated row view — and the
// sharded tier moves these between processes: a draining worker hands
// its hottest views to its successor, and operators can snapshot and
// restore caches. The format is versioned and self-validating: decode
// rejects anything that would not have come out of Compress, so a
// decoded view is bit-identical to compiling the same data locally.
//
// Format (version 1, all integers unsigned varints unless noted):
//
//	magic   "CTMX" (4 bytes)
//	version uvarint (currently 1)
//	nAssets uvarint, then per asset: uvarint length + UTF-8 bytes
//	rows    uvarint — source realizations
//	distinct uvarint — deduplicated pattern count (1..rows)
//	bits    distinct × stride uint64, little-endian fixed64
//	        (stride = ceil(nAssets/64); padding bits must be zero)
//	index   rows × uvarint — pattern index of each source realization,
//	        in realization order
//
// The per-row index stream carries the full source matrix (each row is
// its pattern, expanded) and the dedup structure at once: weights are
// derived by counting, and canonical first-occurrence order is
// enforced — pattern index d may first appear only after every index
// below d has appeared — so exactly one byte stream encodes any given
// compiled view.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
)

// CompressedMatrixCodecVersion is the current wire-format version,
// carried in the stream and in the X-Codec-Version HTTP header of the
// serving tier's view export/import endpoints.
const CompressedMatrixCodecVersion = 1

// codecMagic starts every encoded view.
var codecMagic = [4]byte{'C', 'T', 'M', 'X'}

// Decode-side sanity bounds. They exist so a hostile or corrupt stream
// cannot make the decoder allocate unbounded memory before validation
// catches up with it; both are far above anything this module compiles.
const (
	maxCodecAssets = 1 << 16
	maxCodecRows   = 1 << 26
)

// ErrCodec wraps every decode failure, so callers can distinguish a
// malformed stream from I/O errors.
var ErrCodec = errors.New("engine: invalid compressed-matrix stream")

func codecErrorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCodec, fmt.Sprintf(format, args...))
}

// EncodeCompressedMatrix writes the view and its source matrix in wire
// format. The source realization → pattern mapping is recovered by
// matching each source row against the distinct patterns (one hashed
// pass, the same grouping Compress performs).
func EncodeCompressedMatrix(w io.Writer, c *CompressedMatrix) error {
	if c == nil || c.src == nil {
		return errors.New("engine: encode nil compressed matrix")
	}
	m := c.src
	if c.rows != m.rows || c.stride != m.stride {
		return errors.New("engine: compressed view does not match its source matrix")
	}
	if m.rows == 0 || len(c.weights) == 0 {
		return errors.New("engine: encode empty compressed matrix")
	}
	buf := make([]byte, 0, 64+len(m.ids)*16+len(c.bits)*8+m.rows)
	buf = append(buf, codecMagic[:]...)
	buf = binary.AppendUvarint(buf, CompressedMatrixCodecVersion)
	buf = binary.AppendUvarint(buf, uint64(len(m.ids)))
	for _, id := range m.ids {
		buf = binary.AppendUvarint(buf, uint64(len(id)))
		buf = append(buf, id...)
	}
	buf = binary.AppendUvarint(buf, uint64(m.rows))
	buf = binary.AppendUvarint(buf, uint64(len(c.weights)))
	for _, word := range c.bits {
		buf = binary.LittleEndian.AppendUint64(buf, word)
	}
	// Index distinct patterns for the row walk. Single-word rows index
	// directly by word; wider rows go through the same FNV grouping
	// Compress uses.
	if c.stride == 1 {
		idx := make(map[uint64]int, len(c.weights))
		for d, word := range c.bits {
			idx[word] = d
		}
		for r := 0; r < m.rows; r++ {
			d, ok := idx[m.bits[r]]
			if !ok {
				return errors.New("engine: source row missing from compressed view")
			}
			buf = binary.AppendUvarint(buf, uint64(d))
		}
	} else {
		byHash := make(map[uint64][]int, len(c.weights))
		for d := 0; d < len(c.weights); d++ {
			h := hashRow(c.bits[d*c.stride : (d+1)*c.stride])
			byHash[h] = append(byHash[h], d)
		}
	rows:
		for r := 0; r < m.rows; r++ {
			row := m.bits[r*m.stride : (r+1)*m.stride]
			for _, d := range byHash[hashRow(row)] {
				if equalRow(c.bits[d*c.stride:(d+1)*c.stride], row) {
					buf = binary.AppendUvarint(buf, uint64(d))
					continue rows
				}
			}
			return errors.New("engine: source row missing from compressed view")
		}
	}
	_, err := w.Write(buf)
	return err
}

// hashRow is the FNV-1a row hash Compress uses for grouping.
func hashRow(row []uint64) uint64 {
	h := uint64(fnv64Offset)
	for _, w := range row {
		for b := 0; b < 64; b += 8 {
			h = (h ^ (w >> uint(b) & 0xff)) * fnv64Prime
		}
	}
	return h
}

// DecodeCompressedMatrix reads one encoded view, reconstructing both
// the source FailureMatrix (every realization expanded from its
// pattern) and its CompressedMatrix, bit-identical to the encoder's
// originals. Any structural violation — unknown version, duplicate or
// empty asset IDs, nonzero padding bits, duplicate distinct patterns,
// out-of-range or non-canonically-ordered row indexes, unused
// patterns, trailing bytes — fails with an error wrapping ErrCodec.
func DecodeCompressedMatrix(r io.Reader) (*CompressedMatrix, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, codecErrorf("magic: %v", err)
	}
	if magic != codecMagic {
		return nil, codecErrorf("bad magic %q", magic[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, codecErrorf("version: %v", err)
	}
	if version != CompressedMatrixCodecVersion {
		return nil, codecErrorf("unsupported version %d (have %d)", version, CompressedMatrixCodecVersion)
	}
	nAssets, err := readBounded(br, "asset count", 1, maxCodecAssets)
	if err != nil {
		return nil, err
	}
	m := &FailureMatrix{
		ids:    make([]string, nAssets),
		col:    make(map[string]int, nAssets),
		stride: (nAssets + 63) / 64,
	}
	idBuf := make([]byte, 0, 64)
	for i := range m.ids {
		n, err := readBounded(br, "asset ID length", 1, 4096)
		if err != nil {
			return nil, err
		}
		if cap(idBuf) < n {
			idBuf = make([]byte, n)
		}
		idBuf = idBuf[:n]
		if _, err := io.ReadFull(br, idBuf); err != nil {
			return nil, codecErrorf("asset ID %d: %v", i, err)
		}
		id := string(idBuf)
		if _, dup := m.col[id]; dup {
			return nil, codecErrorf("duplicate asset ID %q", id)
		}
		m.ids[i] = id
		m.col[id] = i
	}
	rows, err := readBounded(br, "row count", 1, maxCodecRows)
	if err != nil {
		return nil, err
	}
	m.rows = rows
	distinct, err := readBounded(br, "distinct count", 1, rows)
	if err != nil {
		return nil, err
	}
	c := &CompressedMatrix{src: m, stride: m.stride, rows: rows}
	c.bits, err = readWords(br, distinct*m.stride)
	if err != nil {
		return nil, err
	}
	// Padding bits past nAssets in each row's last word must be zero —
	// Compress never produces them, and they would silently change
	// Pattern() results on a widened universe.
	if rem := nAssets & 63; rem != 0 {
		mask := ^(uint64(1)<<uint(rem) - 1)
		for d := 0; d < distinct; d++ {
			if c.bits[d*m.stride+m.stride-1]&mask != 0 {
				return nil, codecErrorf("distinct row %d has padding bits set", d)
			}
		}
	}
	for d := 1; d < distinct; d++ {
		row := c.bits[d*m.stride : (d+1)*m.stride]
		for e := 0; e < d; e++ {
			if equalRow(c.bits[e*m.stride:(e+1)*m.stride], row) {
				return nil, codecErrorf("distinct rows %d and %d are identical", e, d)
			}
		}
	}
	// Expand the index stream into the source matrix and the weights,
	// enforcing canonical first-occurrence order: index d may first
	// appear only once indexes 0..d-1 have all appeared.
	m.bits = make([]uint64, rows*m.stride)
	c.weights = make([]int, distinct)
	next := 0
	for r := 0; r < rows; r++ {
		d, err := readBounded(br, "row index", 0, distinct-1)
		if err != nil {
			return nil, fmt.Errorf("%w (row %d)", err, r)
		}
		if d > next {
			return nil, codecErrorf("row %d introduces pattern %d before pattern %d", r, d, next)
		}
		if d == next {
			next++
		}
		c.weights[d]++
		copy(m.bits[r*m.stride:(r+1)*m.stride], c.bits[d*m.stride:(d+1)*m.stride])
	}
	if next != distinct {
		return nil, codecErrorf("%d of %d distinct patterns never referenced", distinct-next, distinct)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, codecErrorf("trailing bytes after matrix")
	}
	return c, nil
}

// readBounded reads one uvarint and range-checks it as an int.
func readBounded(br *bufio.Reader, what string, lo, hi int) (int, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, codecErrorf("%s: %v", what, err)
	}
	if v > uint64(hi) || v < uint64(lo) {
		return 0, codecErrorf("%s %d out of range [%d, %d]", what, v, lo, hi)
	}
	return int(v), nil
}

// readWords reads n little-endian uint64 words, growing the result in
// bounded chunks so a length-lying prefix on a short stream fails fast
// instead of allocating the claimed size up front.
func readWords(br *bufio.Reader, n int) ([]uint64, error) {
	const chunkWords = 64 << 10
	out := make([]uint64, 0, min(n, chunkWords))
	var raw [8 * 1024]byte
	for len(out) < n {
		want := min(n-len(out), len(raw)/8)
		if _, err := io.ReadFull(br, raw[:want*8]); err != nil {
			return nil, codecErrorf("distinct row bits: %v", err)
		}
		for i := 0; i < want; i++ {
			out = append(out, binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return out, nil
}

// EncodedSizeEstimate returns a rough upper bound on the encoded byte
// size of the view — enough for callers sizing transfer buffers or
// enforcing body caps before an export.
func (c *CompressedMatrix) EncodedSizeEstimate() int {
	if c == nil || c.src == nil {
		return 0
	}
	ids := 0
	for _, id := range c.src.ids {
		ids += len(id) + binary.MaxVarintLen64
	}
	return 4 + 5*binary.MaxVarintLen64 + ids + len(c.bits)*8 +
		c.rows*varintLen(uint64(max(len(c.weights)-1, 0)))
}

// varintLen returns the encoded size of v as a uvarint.
func varintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }
