package engine_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"compoundthreat/internal/engine"
	"compoundthreat/internal/threat"
	"compoundthreat/internal/topology"
)

// encode round-trips through the exported codec, failing the test on
// any error.
func encode(t testing.TB, cm *engine.CompressedMatrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := engine.EncodeCompressedMatrix(&buf, cm); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertSameView checks that two compiled views are bit-identical
// through the exported API: same assets, same source matrix cells,
// same distinct rows, weights, and patterns.
func assertSameView(t *testing.T, got, want *engine.CompressedMatrix) {
	t.Helper()
	gm, wm := got.Source(), want.Source()
	gids, wids := gm.Assets(), wm.Assets()
	if len(gids) != len(wids) {
		t.Fatalf("asset count %d, want %d", len(gids), len(wids))
	}
	for i := range wids {
		if gids[i] != wids[i] {
			t.Fatalf("asset %d = %q, want %q", i, gids[i], wids[i])
		}
	}
	if gm.Rows() != wm.Rows() {
		t.Fatalf("matrix rows %d, want %d", gm.Rows(), wm.Rows())
	}
	for r := 0; r < wm.Rows(); r++ {
		for c := range wids {
			if gm.Failed(r, c) != wm.Failed(r, c) {
				t.Fatalf("cell (%d, %d) = %v, want %v", r, c, gm.Failed(r, c), wm.Failed(r, c))
			}
		}
	}
	if got.Rows() != want.Rows() || got.DistinctRows() != want.DistinctRows() {
		t.Fatalf("compressed shape (%d, %d), want (%d, %d)",
			got.Rows(), got.DistinctRows(), want.Rows(), want.DistinctRows())
	}
	cols := make([]int, len(wids))
	for i := range cols {
		cols[i] = i
	}
	// Compare up to 64 columns per pattern call; wider universes walk
	// the columns in chunks.
	for d := 0; d < want.DistinctRows(); d++ {
		if got.Weight(d) != want.Weight(d) {
			t.Fatalf("weight %d = %d, want %d", d, got.Weight(d), want.Weight(d))
		}
		for lo := 0; lo < len(cols); lo += 64 {
			hi := min(lo+64, len(cols))
			if g, w := got.Pattern(d, cols[lo:hi]), want.Pattern(d, cols[lo:hi]); g != w {
				t.Fatalf("distinct row %d cols [%d,%d) pattern %x, want %x", d, lo, hi, g, w)
			}
		}
	}
}

// TestCodecRoundTrip encodes compiled views over random ensembles —
// including a 70-asset universe so multi-word rows are covered — and
// asserts the decoded view is bit-identical, and that a weighted
// evaluation over the decoded view matches the original exactly.
func TestCodecRoundTrip(t *testing.T) {
	narrow := []string{"a", "b", "c", "d", "e"}
	wide := make([]string, 70)
	for i := range wide {
		wide[i] = "asset-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	for _, tc := range []struct {
		name   string
		assets []string
		rows   int
	}{
		{"narrow", narrow, 400},
		{"wide", wide, 128},
		{"single-row", narrow, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := randomEnsemble(t, 7, tc.rows, tc.assets)
			m, err := engine.NewFailureMatrix(e, tc.assets)
			if err != nil {
				t.Fatal(err)
			}
			cm := engine.Compress(m, 1)
			back, err := engine.DecodeCompressedMatrix(bytes.NewReader(encode(t, cm)))
			if err != nil {
				t.Fatal(err)
			}
			assertSameView(t, back, cm)

			cfg := topology.NewConfig666(tc.assets[0], tc.assets[1], tc.assets[2])
			var pool engine.EvaluatorPool
			var wantCounts, gotCounts engine.Counts
			ev, err := pool.Get(m, cfg, threat.Hurricane.Capability())
			if err != nil {
				t.Fatal(err)
			}
			if err := ev.AddWeighted(&wantCounts, cm, 0, cm.DistinctRows()); err != nil {
				t.Fatal(err)
			}
			bev, err := pool.Get(back.Source(), cfg, threat.Hurricane.Capability())
			if err != nil {
				t.Fatal(err)
			}
			if err := bev.AddWeighted(&gotCounts, back, 0, back.DistinctRows()); err != nil {
				t.Fatal(err)
			}
			if gotCounts != wantCounts {
				t.Fatalf("decoded evaluation %v, want %v", gotCounts, wantCounts)
			}
		})
	}
}

// TestCodecCanonical asserts exactly one byte stream encodes a view:
// re-encoding a decoded view reproduces the original bytes.
func TestCodecCanonical(t *testing.T) {
	assets := []string{"honolulu-cc", "waiau-plant", "kahe-plant", "drfortress"}
	e := randomEnsemble(t, 3, 250, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	cm := engine.Compress(m, 0)
	wire := encode(t, cm)
	back, err := engine.DecodeCompressedMatrix(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if rewire := encode(t, back); !bytes.Equal(rewire, wire) {
		t.Fatalf("re-encode differs: %d bytes vs %d", len(rewire), len(wire))
	}
	if est := cm.EncodedSizeEstimate(); est < len(wire) {
		t.Fatalf("EncodedSizeEstimate() = %d below actual %d", est, len(wire))
	}
}

// TestCodecDecodeErrors feeds structurally broken streams and asserts
// each is rejected with ErrCodec rather than accepted or panicking.
func TestCodecDecodeErrors(t *testing.T) {
	assets := []string{"a", "b", "c"}
	e := randomEnsemble(t, 11, 50, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		t.Fatal(err)
	}
	valid := encode(t, engine.Compress(m, 1))
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version": mutate(func(b []byte) []byte { b[4] = 99; return b }),
		"truncated":   valid[:len(valid)/2],
		"trailing":    mutate(func(b []byte) []byte { return append(b, 0) }),
	}
	for name, input := range cases {
		if _, err := engine.DecodeCompressedMatrix(bytes.NewReader(input)); !errors.Is(err, engine.ErrCodec) {
			t.Errorf("%s: err = %v, want ErrCodec", name, err)
		}
	}
	if _, err := engine.DecodeCompressedMatrix(strings.NewReader("")); !errors.Is(err, engine.ErrCodec) {
		t.Errorf("empty reader: err = %v, want ErrCodec", err)
	}
}

// TestCodecEncodeRejectsNil covers the encoder's own guards.
func TestCodecEncodeRejectsNil(t *testing.T) {
	var buf bytes.Buffer
	if err := engine.EncodeCompressedMatrix(&buf, nil); err == nil {
		t.Fatal("encoding nil succeeded")
	}
}

// FuzzDecodeCompressedMatrix asserts the decoder never panics on
// arbitrary bytes, and that anything it accepts is internally
// consistent and re-encodes to the identical byte stream (the
// canonical-encoding property the warm-handoff path relies on).
func FuzzDecodeCompressedMatrix(f *testing.F) {
	assets := []string{"a", "b", "c", "d"}
	e := randomEnsemble(f, 5, 60, assets)
	m, err := engine.NewFailureMatrix(e, assets)
	if err != nil {
		f.Fatal(err)
	}
	valid := encode(f, engine.Compress(m, 1))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("CTMX"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		cm, err := engine.DecodeCompressedMatrix(bytes.NewReader(input))
		if err != nil {
			if cm != nil {
				t.Fatal("decode returned both a view and an error")
			}
			return
		}
		sum := 0
		for d := 0; d < cm.DistinctRows(); d++ {
			if w := cm.Weight(d); w < 1 {
				t.Fatalf("weight %d = %d", d, w)
			} else {
				sum += w
			}
		}
		if sum != cm.Rows() {
			t.Fatalf("weights sum to %d, want %d", sum, cm.Rows())
		}
		var buf bytes.Buffer
		if err := engine.EncodeCompressedMatrix(&buf, cm); err != nil {
			t.Fatalf("re-encode accepted view: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), input) {
			t.Fatalf("accepted stream is not canonical: re-encode differs (%d vs %d bytes)",
				buf.Len(), len(input))
		}
	})
}
