package engine_test

import (
	"math/bits"
	"testing"

	"compoundthreat/internal/attack"
	"compoundthreat/internal/engine"
	"compoundthreat/internal/hazard"
	"compoundthreat/internal/threat"
	"compoundthreat/internal/topology"
)

// patternEnsemble builds a hazard ensemble whose rows enumerate every
// flood pattern over the assets, each repeated r+1 times so compressed
// multiplicities differ per pattern.
func patternEnsemble(t testing.TB, assetIDs []string) *hazard.Ensemble {
	t.Helper()
	n := len(assetIDs)
	cfg := hazard.OahuScenario()
	var rows [][]float64
	for p := 0; p < 1<<uint(n); p++ {
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			if p>>uint(i)&1 != 0 {
				row[i] = 1.0
			}
		}
		for rep := 0; rep <= p%3; rep++ {
			rows = append(rows, row)
		}
	}
	cfg.Realizations = len(rows)
	e, err := hazard.NewEnsembleFromDepths(cfg, assetIDs, rows)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func kernelCapabilities() []threat.Capability {
	return []threat.Capability{
		{},
		{Intrusions: 1},
		{Isolations: 1},
		{Intrusions: 1, Isolations: 1},
		{Intrusions: 2, Isolations: 2},
		{Intrusions: 3, Isolations: 1},
	}
}

// TestSymmetricConfig pins the symmetry predicate: single-site and
// uniform active replication are symmetric; primary-backup and
// non-uniform replica layouts are not.
func TestSymmetricConfig(t *testing.T) {
	if !engine.SymmetricConfig(topology.NewConfig6("a")) {
		t.Error("single-site \"6\" should be symmetric")
	}
	if !engine.SymmetricConfig(topology.NewConfig666("a", "b", "c")) {
		t.Error("\"6+6+6\" should be symmetric")
	}
	if !engine.SymmetricConfig(topology.NewConfigKSite([]string{"a", "b"})) {
		t.Error("two-site k-site config should be symmetric")
	}
	if engine.SymmetricConfig(topology.NewConfig66("a", "b")) {
		t.Error("primary-backup should not be symmetric")
	}
	skew := topology.NewConfig666("a", "b", "c")
	skew.Sites[2].Replicas = 3
	if engine.SymmetricConfig(skew) {
		t.Error("non-uniform replica counts should not be symmetric")
	}
	if _, err := engine.StateByCount(topology.NewConfig66("a", "b"), threat.Capability{}); err != engine.ErrNotSymmetric {
		t.Errorf("StateByCount on primary-backup: err = %v, want ErrNotSymmetric", err)
	}
}

// TestStateByCountExhaustive is the symmetry proof backing every
// kernel: for each symmetric configuration and capability, every one
// of the 2^S flood patterns must evaluate (through the full greedy
// attack analyzer) to exactly the table entry of its popcount.
func TestStateByCountExhaustive(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	var configs []topology.Config
	for k := 1; k <= len(ids); k++ {
		configs = append(configs, topology.NewConfigKSite(ids[:k]))
	}
	configs = append(configs, topology.NewConfig666(ids[0], ids[1], ids[2]))
	skew := topology.NewConfigKSite(ids[:4])
	skew.MinActiveSites = 4 // stricter quorum, still symmetric
	configs = append(configs, skew)
	for _, cfg := range configs {
		for _, capability := range kernelCapabilities() {
			tbl, err := engine.StateByCount(cfg, capability)
			if err != nil {
				t.Fatalf("%s/%+v: StateByCount: %v", cfg.Name, capability, err)
			}
			an, err := attack.NewAnalyzer(cfg, capability)
			if err != nil {
				t.Fatal(err)
			}
			n := uint(len(cfg.Sites))
			for mask := uint64(0); mask < 1<<n; mask++ {
				want, err := an.EvaluateMask(mask)
				if err != nil {
					t.Fatal(err)
				}
				if got := tbl[bits.OnesCount64(mask)]; got != want {
					t.Fatalf("%s/%+v: pattern %#x: table says %v, analyzer says %v",
						cfg.Name, capability, mask, got, want)
				}
			}
		}
	}
}

// TestMaskKernelMatchesEvaluator cross-checks the word-parallel kernel
// against the memoized evaluator over an exhaustive pattern universe:
// identical outcome histograms for every site subset, size, and
// capability.
func TestMaskKernelMatchesEvaluator(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	e := patternEnsemble(t, ids)
	m, err := engine.NewFailureMatrix(e, ids)
	if err != nil {
		t.Fatal(err)
	}
	cm := engine.Compress(m, 1)
	subsets := [][]string{
		{ids[0]},
		{ids[0], ids[1]},
		{ids[2], ids[0], ids[4]}, // unordered on purpose
		{ids[1], ids[3], ids[5]},
		{ids[0], ids[1], ids[2], ids[3]},
		ids,
	}
	kernel := engine.NewMaskKernel()
	for _, sites := range subsets {
		cfg := topology.NewConfigKSite(sites)
		for _, capability := range kernelCapabilities() {
			tbl, err := engine.StateByCount(cfg, capability)
			if err != nil {
				t.Fatal(err)
			}
			if err := kernel.BindConfig(cm, tbl, cfg); err != nil {
				t.Fatal(err)
			}
			var got engine.Counts
			kernel.AddWeighted(&got, 0, cm.DistinctRows())

			ev, err := engine.NewEvaluator(m, cfg, capability)
			if err != nil {
				t.Fatal(err)
			}
			var want engine.Counts
			if err := ev.AddWeighted(&want, cm, 0, cm.DistinctRows()); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("sites %v, capability %+v: kernel %v, evaluator %v", sites, capability, got, want)
			}
		}
	}
}

// TestMaskKernelMultiWord exercises the stride > 1 path: a 70-asset
// matrix puts site columns in both words of each row.
func TestMaskKernelMultiWord(t *testing.T) {
	ids := make([]string, 70)
	for i := range ids {
		ids[i] = "a" + string(rune('A'+i/26)) + string(rune('a'+i%26))
	}
	e := randomEnsemble(t, 7, 300, ids)
	m, err := engine.NewFailureMatrix(e, ids)
	if err != nil {
		t.Fatal(err)
	}
	cm := engine.Compress(m, 1)
	sites := []string{ids[3], ids[40], ids[69]}
	cfg := topology.NewConfigKSite(sites)
	capability := threat.Capability{Intrusions: 1, Isolations: 1}
	tbl, err := engine.StateByCount(cfg, capability)
	if err != nil {
		t.Fatal(err)
	}
	kernel := engine.NewMaskKernel()
	if err := kernel.Bind(cm, tbl, sites); err != nil {
		t.Fatal(err)
	}
	var got engine.Counts
	kernel.AddWeighted(&got, 0, cm.DistinctRows())
	ev, err := engine.NewEvaluator(m, cfg, capability)
	if err != nil {
		t.Fatal(err)
	}
	var want engine.Counts
	if err := ev.AddWeighted(&want, cm, 0, cm.DistinctRows()); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("multi-word kernel %v, evaluator %v", got, want)
	}
}

// TestMaskKernelBindErrors pins the bind-time validation: table size
// mismatch, unknown assets, and duplicate sites all fail loudly.
func TestMaskKernelBindErrors(t *testing.T) {
	ids := []string{"s0", "s1", "s2"}
	e := patternEnsemble(t, ids)
	m, err := engine.NewFailureMatrix(e, ids)
	if err != nil {
		t.Fatal(err)
	}
	cm := engine.Compress(m, 1)
	cfg := topology.NewConfigKSite(ids[:2])
	tbl, err := engine.StateByCount(cfg, threat.Capability{})
	if err != nil {
		t.Fatal(err)
	}
	kernel := engine.NewMaskKernel()
	if err := kernel.Bind(cm, tbl, ids); err == nil {
		t.Error("table for 2 sites bound to 3 sites should fail")
	}
	if err := kernel.Bind(cm, tbl, []string{"s0", "nope"}); err == nil {
		t.Error("unknown asset should fail")
	}
	if err := kernel.Bind(cm, tbl, []string{"s0", "s0"}); err == nil {
		t.Error("duplicate site should fail")
	}
	if err := kernel.Bind(cm, tbl, ids[:2]); err != nil {
		t.Errorf("valid bind after errors: %v", err)
	}
}

// TestCountKernel checks the incremental kernel against the mask
// kernel: growing a placement site by site yields the same histograms,
// CountsWith previews exactly what Add would produce, and Remove and
// Clear restore earlier states.
func TestCountKernel(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3", "s4"}
	e := patternEnsemble(t, ids)
	m, err := engine.NewFailureMatrix(e, ids)
	if err != nil {
		t.Fatal(err)
	}
	cm := engine.Compress(m, 1)
	cols := make([]int, len(ids))
	for i := range cols {
		cols[i] = i
	}
	ck, err := engine.NewCountKernel(cm, cols)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Candidates() != len(ids) {
		t.Fatalf("Candidates() = %d", ck.Candidates())
	}
	for j := range cols {
		for i := 0; i < cm.DistinctRows(); i++ {
			want := uint16(0)
			if cm.Pattern(i, cols[j:j+1]) != 0 {
				want = 1
			}
			if got := ck.FloodBit(j, i); got != want {
				t.Fatalf("FloodBit(%d, %d) = %d, want %d", j, i, got, want)
			}
		}
	}

	capability := threat.Capability{Intrusions: 1, Isolations: 1}
	kernel := engine.NewMaskKernel()
	order := []int{2, 0, 4, 1}
	for grown := 1; grown <= len(order); grown++ {
		sites := make([]string, grown)
		for i, j := range order[:grown] {
			sites[i] = ids[j]
		}
		tbl, err := engine.StateByCount(topology.NewConfigKSite(sites), capability)
		if err != nil {
			t.Fatal(err)
		}

		// Preview via CountsWith before mutating.
		var preview engine.Counts
		ck.CountsWith(order[grown-1], tbl, &preview)

		ck.Add(order[grown-1])
		var got engine.Counts
		ck.Counts(tbl, &got)
		if got != preview {
			t.Fatalf("size %d: CountsWith %v != Counts after Add %v", grown, preview, got)
		}

		if err := kernel.Bind(cm, tbl, sites); err != nil {
			t.Fatal(err)
		}
		var want engine.Counts
		kernel.AddWeighted(&want, 0, cm.DistinctRows())
		if got != want {
			t.Fatalf("size %d: count kernel %v, mask kernel %v", grown, got, want)
		}
	}
	for _, j := range order {
		ck.Remove(j)
	}
	for i, c := range ck.FloodedCounts() {
		if c != 0 {
			t.Fatalf("row %d count %d after removing all", i, c)
		}
	}
	ck.Add(1)
	ck.Clear()
	for _, c := range ck.FloodedCounts() {
		if c != 0 {
			t.Fatal("Clear left non-zero counts")
		}
	}
}
